"""Tests for the push-sum aggregation substrate."""

import numpy as np
import pytest

from repro.aggregates.push_sum import (
    PushSumProtocol,
    default_push_sum_rounds,
    push_sum_average,
    push_sum_sum,
)
from repro.exceptions import ConfigurationError
from repro.gossip.engine import run_protocol


def test_default_rounds_grow_with_n_and_accuracy():
    assert default_push_sum_rounds(1024) > default_push_sum_rounds(64)
    assert default_push_sum_rounds(256, 1e-6) > default_push_sum_rounds(256, 1e-2)
    with pytest.raises(ConfigurationError):
        default_push_sum_rounds(1)
    with pytest.raises(ConfigurationError):
        default_push_sum_rounds(10, 2.0)


def test_push_sum_average_converges_to_true_average():
    values = np.arange(1.0, 257.0)
    result = push_sum_average(values, rng=1)
    truth = values.mean()
    assert np.all(np.abs(result.estimates - truth) / truth < 1e-3)
    assert result.max_relative_spread < 1e-3


def test_push_sum_sum_converges_to_true_sum():
    values = np.arange(1.0, 129.0)
    result = push_sum_sum(values, rng=2)
    truth = values.sum()
    assert abs(result.mean_estimate - truth) / truth < 1e-3


def test_mass_conservation_invariant():
    values = np.arange(1.0, 65.0)
    protocol = PushSumProtocol(values, rounds=30)
    initial_mass = protocol.total_mass
    initial_weight = protocol.total_weight
    run_protocol(protocol, rng=3, max_rounds=31)
    assert protocol.total_mass == pytest.approx(initial_mass, rel=1e-9)
    assert protocol.total_weight == pytest.approx(initial_weight, rel=1e-9)


def test_mass_conservation_under_failures():
    values = np.arange(1.0, 65.0)
    protocol = PushSumProtocol(values, rounds=30)
    initial_mass = protocol.total_mass
    run_protocol(protocol, rng=4, failure_model=0.4, max_rounds=31)
    assert protocol.total_mass == pytest.approx(initial_mass, rel=1e-9)


def test_push_sum_with_failures_still_converges():
    values = np.arange(1.0, 257.0)
    rounds = default_push_sum_rounds(256) * 2
    result = push_sum_average(values, rng=5, rounds=rounds, failure_model=0.3)
    truth = values.mean()
    assert abs(result.mean_estimate - truth) / truth < 1e-2


def test_round_accounting():
    values = np.arange(1.0, 65.0)
    result = push_sum_average(values, rng=6, rounds=25)
    assert result.rounds == 25
    assert result.metrics.messages == 25 * 64


def test_invalid_inputs():
    with pytest.raises(ConfigurationError):
        PushSumProtocol([1.0])
    with pytest.raises(ConfigurationError):
        PushSumProtocol(np.ones((2, 2)))
    with pytest.raises(ConfigurationError):
        PushSumProtocol(np.arange(4.0), weights=np.arange(3.0))
    with pytest.raises(ConfigurationError):
        PushSumProtocol(np.arange(4.0), weights=np.array([-1.0, 1.0, 1.0, 1.0]))
    with pytest.raises(ConfigurationError):
        PushSumProtocol(np.arange(4.0), rounds=0)


def test_message_bits_constant_per_message():
    protocol = PushSumProtocol(np.arange(16.0), rounds=5)
    bits = protocol.message_bits((1.0, 0.5))
    assert bits == protocol.message_bits((100.0, 2.0))
    assert bits > 64
