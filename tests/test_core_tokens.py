"""Tests for the Step-7 token split-and-distribute process.

The invariant suite runs identically against both engines (the loop
reference and the vectorized implementation); dedicated tests pin the loop
engine's bit-identity to the historical behaviour and the dispatcher's
engine selection.
"""

import math

import numpy as np
import pytest

from repro.core.tokens import (
    TOKEN_ENGINE_CHOICES,
    distribute_tokens,
    distribute_tokens_loop,
    distribute_tokens_vectorized,
)
from repro.exceptions import ConfigurationError
from repro.utils.rand import RandomSource

ENGINES = ("loop", "vectorized")


@pytest.mark.parametrize("engine", ENGINES)
def test_every_item_gets_exactly_multiplicity_copies(engine):
    result = distribute_tokens(list(range(20)), multiplicity=8, n=512, rng=1,
                               engine=engine)
    for item in range(20):
        assert result.copies_of(item) == 8
    owned = result.owners[result.owners >= 0]
    assert owned.size == 20 * 8


@pytest.mark.parametrize("engine", ENGINES)
def test_no_node_holds_more_than_one_token_at_the_end(engine):
    result = distribute_tokens(list(range(30)), multiplicity=4, n=256, rng=2,
                               engine=engine)
    owners = result.owners
    occupied = owners[owners >= 0]
    assert occupied.size == 30 * 4
    # owners array has one entry per node, so "at most one token per node"
    # is structural; verify counts per item instead.
    counts = np.bincount(occupied, minlength=30)
    assert np.all(counts == 4)


@pytest.mark.parametrize("engine", ENGINES)
def test_multiplicity_one_keeps_items_in_place(engine):
    item_nodes = [5, 9, 17]
    result = distribute_tokens(item_nodes, multiplicity=1, n=64, rng=3,
                               engine=engine)
    assert result.phases == 0
    for item, node in enumerate(item_nodes):
        assert result.copies_of(item) == 1
        assert result.owners[node] == item


@pytest.mark.parametrize("engine", ENGINES)
def test_multiplicity_one_with_colocated_items_spreads(engine):
    result = distribute_tokens([7, 7, 7], multiplicity=1, n=128, rng=4,
                               engine=engine)
    occupied = result.owners[result.owners >= 0]
    assert occupied.size == 3
    assert sorted(occupied.tolist()) == [0, 1, 2]
    assert result.phases >= 1


@pytest.mark.parametrize("engine", ENGINES)
def test_phases_grow_logarithmically_with_multiplicity(engine):
    # keep the token load well below n so spreading collisions stay rare,
    # matching the paper's regime of at most n^0.99 tokens
    small = distribute_tokens(list(range(10)), multiplicity=2, n=2048, rng=4,
                              engine=engine)
    large = distribute_tokens(list(range(10)), multiplicity=32, n=2048, rng=4,
                              engine=engine)
    assert large.phases > small.phases
    assert large.phases <= small.phases + math.log2(32) + 20


@pytest.mark.parametrize("engine", ENGINES)
def test_max_tokens_per_node_stays_small(engine):
    result = distribute_tokens(list(range(40)), multiplicity=8, n=1024, rng=5,
                               engine=engine)
    assert result.max_tokens_per_node <= 12  # O(1) w.h.p.


@pytest.mark.parametrize("engine", ENGINES)
def test_under_failures_still_completes_and_counts_failed_pushes(engine):
    result = distribute_tokens(
        list(range(20)), multiplicity=8, n=512, rng=6, failure_model=0.3,
        engine=engine,
    )
    assert result.failed_pushes > 0
    for item in range(20):
        assert result.copies_of(item) == 8


@pytest.mark.parametrize("engine", ENGINES)
def test_rounds_accounting_shared_metrics(engine):
    from repro.gossip.metrics import NetworkMetrics

    shared = NetworkMetrics(keep_history=False)
    shared.charge_rounds(10)
    result = distribute_tokens(
        list(range(8)), multiplicity=4, n=128, rng=7, metrics=shared,
        engine=engine,
    )
    assert result.rounds == shared.rounds - 10


@pytest.mark.parametrize("engine", ENGINES)
def test_validation_errors(engine):
    with pytest.raises(ConfigurationError):
        distribute_tokens([], multiplicity=2, n=16, engine=engine)
    with pytest.raises(ConfigurationError):
        # not a power of two
        distribute_tokens([0, 1], multiplicity=3, n=16, engine=engine)
    with pytest.raises(ConfigurationError):
        # node out of range
        distribute_tokens([0, 20], multiplicity=2, n=16, engine=engine)
    with pytest.raises(ConfigurationError):
        # 40 tokens > 16 nodes
        distribute_tokens(list(range(10)), multiplicity=4, n=16, engine=engine)


@pytest.mark.parametrize("engine", ENGINES)
def test_deterministic_given_seed(engine):
    a = distribute_tokens(list(range(12)), multiplicity=4, n=256,
                          rng=RandomSource(9), engine=engine)
    b = distribute_tokens(list(range(12)), multiplicity=4, n=256,
                          rng=RandomSource(9), engine=engine)
    assert np.array_equal(a.owners, b.owners)
    assert a.phases == b.phases


# ---- engine dispatch --------------------------------------------------------


def test_engine_dispatch_and_result_tagging():
    assert TOKEN_ENGINE_CHOICES == ("auto", "loop", "vectorized")
    auto = distribute_tokens(list(range(5)), multiplicity=4, n=64, rng=1,
                             engine="auto")
    assert auto.engine == "vectorized"
    loop = distribute_tokens(list(range(5)), multiplicity=4, n=64, rng=1,
                             engine="loop")
    assert loop.engine == "loop"
    with pytest.raises(ConfigurationError):
        distribute_tokens(list(range(5)), multiplicity=4, n=64, engine="magic")


def test_engine_defaults_to_global_engine_selection():
    from repro.gossip.engine import get_default_engine, set_default_engine

    before = get_default_engine()
    try:
        set_default_engine("loop")
        result = distribute_tokens(list(range(5)), multiplicity=4, n=64, rng=1)
        assert result.engine == "loop"
        set_default_engine("vectorized")
        result = distribute_tokens(list(range(5)), multiplicity=4, n=64, rng=1)
        assert result.engine == "vectorized"
    finally:
        set_default_engine(before)


# ---- loop engine bit-identity with the pre-vectorization implementation -----


def test_loop_engine_bit_identical_to_pre_vectorization_behavior():
    """The reference engine must reproduce the historical seeded placement.

    The expected arrays were produced by the pre-PR-3 (pure loop)
    implementation; any change to the loop engine's random stream or phase
    schedule breaks this test.
    """
    result = distribute_tokens_loop(list(range(6)), multiplicity=4, n=48, rng=2024)
    expected = [0, 1, 2, 3, 4, 5, 5, 5, 4, -1, 3, 0, 4, -1, 5, 4, -1, 2, -1,
                -1, -1, -1, 2, 1, -1, -1, -1, -1, 0, 2, -1, -1, 1, -1, -1, -1,
                -1, -1, 1, -1, -1, 3, -1, 0, -1, -1, -1, 3]
    assert result.owners.tolist() == expected
    assert result.phases == 6
    assert result.rounds == 8


def test_loop_engine_bit_identical_under_failures():
    result = distribute_tokens_loop(
        list(range(5)), multiplicity=8, n=100, rng=7, failure_model=0.25
    )
    expected = [0, 1, 2, 3, 4, 2, -1, -1, 1, -1, 2, -1, -1, 1, -1, -1, -1, -1,
                -1, 3, -1, 0, -1, 2, -1, 3, -1, -1, 2, -1, -1, -1, -1, -1, -1,
                -1, 1, 4, 0, -1, 3, 0, 1, 3, -1, -1, 0, 1, -1, -1, -1, 3, -1,
                -1, -1, -1, -1, 0, 0, -1, -1, 1, -1, -1, 4, 4, -1, -1, -1, -1,
                0, -1, 4, -1, 2, 4, 4, -1, -1, 2, 4, 2, -1, -1, 3, 3, -1, -1,
                -1, -1, -1, -1, -1, -1, -1, -1, 1, -1, -1, -1]
    assert result.owners.tolist() == expected
    assert result.phases == 9
    assert result.rounds == 18
    assert result.failed_pushes == 20


# ---- loop vs vectorized invariant equivalence -------------------------------


@pytest.mark.parametrize("seed", range(4))
@pytest.mark.parametrize("mu", (0.0, 0.3))
def test_engines_satisfy_identical_invariants_under_fixed_seeds(seed, mu):
    """Same seed, both engines: same invariants, same token accounting.

    The engines draw different random streams (batched vs scalar target
    draws), so the *placements* differ; everything the correctness argument
    uses — exact multiplicities, ≤ 1 token per node, total token count,
    bounded phases — must agree.
    """
    kwargs = dict(
        item_nodes=list(range(15)),
        multiplicity=8,
        n=512,
        failure_model=mu if mu > 0 else None,
    )
    loop = distribute_tokens_loop(rng=RandomSource(seed), **kwargs)
    vec = distribute_tokens_vectorized(rng=RandomSource(seed), **kwargs)
    for result in (loop, vec):
        occupied = result.owners[result.owners >= 0]
        assert occupied.size == 15 * 8
        assert np.all(np.bincount(occupied, minlength=15) == 8)
        assert result.phases <= 4 * math.log2(512)
        assert result.max_tokens_per_node <= 16
        if mu > 0:
            assert result.failed_pushes > 0
    # both engines charge one message per successful push: with a fixed
    # token population the *totals* match exactly even though the random
    # streams differ (every unit token is pushed once per split phase it
    # appears in, and once per spreading displacement).
    assert loop.multiplicity == vec.multiplicity


def test_engines_agree_on_message_accounting_without_failures():
    """No failures: #messages == #pushes == a function of the trajectory.

    Both engines must record one message per push and no failures; the
    totals are trajectory-dependent, so check the invariant per engine
    rather than across engines.
    """
    from repro.gossip.metrics import NetworkMetrics

    for impl in (distribute_tokens_loop, distribute_tokens_vectorized):
        metrics = NetworkMetrics(keep_history=True)
        result = impl(list(range(10)), multiplicity=4, n=256, rng=3,
                      metrics=metrics)
        assert metrics.failed_node_rounds == 0
        assert result.failed_pushes == 0
        assert metrics.messages > 0
        # every recorded round is a token-distribution round
        assert all(r.label == "token-distribution" for r in metrics.history)
        assert len(metrics.history) == result.rounds


def test_vectorized_weight_conservation_mid_failures():
    """Failure merges must conserve the total weight of every item."""
    result = distribute_tokens_vectorized(
        list(range(12)), multiplicity=16, n=1024, rng=11, failure_model=0.4
    )
    occupied = result.owners[result.owners >= 0]
    assert np.all(np.bincount(occupied, minlength=12) == 16)


def test_vectorized_handles_large_instances_quickly():
    n = 50_000
    items = np.arange(0, n, 100)  # 500 items
    result = distribute_tokens_vectorized(items, multiplicity=32, n=n, rng=13)
    occupied = result.owners[result.owners >= 0]
    assert occupied.size == items.size * 32
    assert np.all(np.bincount(occupied, minlength=items.size) == 32)
