"""Tests for the Step-7 token split-and-distribute process."""

import math

import numpy as np
import pytest

from repro.core.tokens import distribute_tokens
from repro.exceptions import ConfigurationError
from repro.utils.rand import RandomSource


def test_every_item_gets_exactly_multiplicity_copies():
    result = distribute_tokens(list(range(20)), multiplicity=8, n=512, rng=1)
    for item in range(20):
        assert result.copies_of(item) == 8
    owned = result.owners[result.owners >= 0]
    assert owned.size == 20 * 8


def test_no_node_holds_more_than_one_token_at_the_end():
    result = distribute_tokens(list(range(30)), multiplicity=4, n=256, rng=2)
    owners = result.owners
    occupied = owners[owners >= 0]
    assert occupied.size == 30 * 4
    # owners array has one entry per node, so "at most one token per node"
    # is structural; verify counts per item instead.
    counts = np.bincount(occupied, minlength=30)
    assert np.all(counts == 4)


def test_multiplicity_one_keeps_items_in_place():
    item_nodes = [5, 9, 17]
    result = distribute_tokens(item_nodes, multiplicity=1, n=64, rng=3)
    assert result.phases == 0 or result.phases >= 0
    for item, node in enumerate(item_nodes):
        assert result.copies_of(item) == 1


def test_phases_grow_logarithmically_with_multiplicity():
    # keep the token load well below n so spreading collisions stay rare,
    # matching the paper's regime of at most n^0.99 tokens
    small = distribute_tokens(list(range(10)), multiplicity=2, n=2048, rng=4)
    large = distribute_tokens(list(range(10)), multiplicity=32, n=2048, rng=4)
    assert large.phases > small.phases
    assert large.phases <= small.phases + math.log2(32) + 20


def test_max_tokens_per_node_stays_small():
    result = distribute_tokens(list(range(40)), multiplicity=8, n=1024, rng=5)
    assert result.max_tokens_per_node <= 12  # O(1) w.h.p.


def test_under_failures_still_completes_and_counts_failed_pushes():
    result = distribute_tokens(
        list(range(20)), multiplicity=8, n=512, rng=6, failure_model=0.3
    )
    assert result.failed_pushes > 0
    for item in range(20):
        assert result.copies_of(item) == 8


def test_rounds_accounting_shared_metrics():
    from repro.gossip.metrics import NetworkMetrics

    shared = NetworkMetrics(keep_history=False)
    shared.charge_rounds(10)
    result = distribute_tokens(
        list(range(8)), multiplicity=4, n=128, rng=7, metrics=shared
    )
    assert result.rounds == shared.rounds - 10


def test_validation_errors():
    with pytest.raises(ConfigurationError):
        distribute_tokens([], multiplicity=2, n=16)
    with pytest.raises(ConfigurationError):
        distribute_tokens([0, 1], multiplicity=3, n=16)  # not a power of two
    with pytest.raises(ConfigurationError):
        distribute_tokens([0, 20], multiplicity=2, n=16)  # node out of range
    with pytest.raises(ConfigurationError):
        distribute_tokens(list(range(10)), multiplicity=4, n=16)  # 40 tokens > 16 nodes


def test_deterministic_given_seed():
    a = distribute_tokens(list(range(12)), multiplicity=4, n=256, rng=RandomSource(9))
    b = distribute_tokens(list(range(12)), multiplicity=4, n=256, rng=RandomSource(9))
    assert np.array_equal(a.owners, b.owners)
    assert a.phases == b.phases
