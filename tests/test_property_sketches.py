"""Property-based tests for the sketch substrate (hypothesis)."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.sketches.compactor import CompactingBuffer, compact
from repro.sketches.kll import KLLSketch
from repro.sketches.weighted_buffer import WeightedBuffer
from repro.utils.rand import RandomSource

float_lists = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False),
    min_size=0,
    max_size=300,
)
nonempty_float_lists = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=300,
)


@settings(max_examples=60, deadline=None)
@given(values=float_lists)
def test_compact_halves_and_preserves_order(values):
    result = compact(values)
    assert len(result) == len(values) // 2
    assert result == sorted(result)
    assert set(result).issubset(set(values))


@settings(max_examples=60, deadline=None)
@given(values=float_lists, probe=st.floats(min_value=-1e6, max_value=1e6))
def test_compaction_rank_error_at_most_one_per_operation(values, probe):
    """Lemma A.3: one compaction moves any rank by at most the old weight."""
    exact_rank = sum(1 for v in values if v <= probe)
    compacted = compact(values)
    weighted_rank = 2 * sum(1 for v in compacted if v <= probe)
    assert abs(weighted_rank - exact_rank) <= 1 + 1  # parity slack of one item


@settings(max_examples=50, deadline=None)
@given(values=nonempty_float_lists, capacity=st.integers(min_value=4, max_value=64))
def test_compacting_buffer_preserves_sample_count(values, capacity):
    buffer = CompactingBuffer.from_samples(values, capacity=capacity)
    assert len(buffer) <= capacity
    # represented samples may only shrink below the input due to odd-size
    # truncation, never by more than one per compaction
    assert buffer.represented_samples <= len(values)
    assert buffer.represented_samples >= len(values) - buffer.weight * buffer.compactions


@settings(max_examples=50, deadline=None)
@given(
    pairs=st.lists(
        st.tuples(
            st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
            st.floats(min_value=0.1, max_value=10.0),
        ),
        min_size=1,
        max_size=100,
    ),
    phi=st.floats(min_value=0.0, max_value=1.0),
)
def test_weighted_buffer_query_rank_roundtrip(pairs, phi):
    buffer = WeightedBuffer.from_pairs(pairs)
    answer = buffer.query(phi)
    # the returned value's weighted quantile covers phi from above
    assert buffer.quantile_of(answer) >= phi - 1e-9
    values = [v for v, _ in pairs]
    assert min(values) <= answer <= max(values)


@settings(max_examples=25, deadline=None)
@given(
    data=st.lists(
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        min_size=50,
        max_size=400,
        unique=True,
    ),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_kll_rank_error_within_bound(data, seed):
    sketch = KLLSketch(k=64, rng=RandomSource(seed))
    sketch.extend(data)
    arr = np.asarray(data)
    for phi in (0.25, 0.5, 0.75):
        estimate = sketch.query(phi)
        true_rank = float(np.sum(arr <= estimate))
        target = phi * arr.size
        assert abs(true_rank - target) <= sketch.error_bound() + 1.0


@settings(max_examples=25, deadline=None)
@given(
    left=st.lists(st.floats(min_value=0.0, max_value=1.0, allow_nan=False), min_size=10, max_size=200),
    right=st.lists(st.floats(min_value=0.0, max_value=1.0, allow_nan=False), min_size=10, max_size=200),
)
def test_kll_merge_counts_add_up(left, right):
    a = KLLSketch(k=32, rng=RandomSource(1))
    b = KLLSketch(k=32, rng=RandomSource(2))
    a.extend(left)
    b.extend(right)
    a.merge(b)
    assert a.count == len(left) + len(right)
    assert a.size <= 3 * 32 + len(a._levels) * 2  # space stays O(k)
