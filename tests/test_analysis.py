"""Tests for the analysis helpers (theory curves, empirics, tables)."""

import numpy as np
import pytest

from repro.analysis.empirics import (
    TrialSummary,
    geometric_means,
    measure_approx_trial,
    success_fraction,
    summarize_errors,
)
from repro.analysis.tables import format_table, rows_to_csv
from repro.analysis.theory import (
    approx_rounds_reference,
    doubling_rounds_reference,
    exact_rounds_reference,
    kempe_rounds_reference,
    lower_bound_reference,
    robust_slowdown_reference,
    sampling_rounds_reference,
)
from repro.datasets.generators import distinct_uniform
from repro.exceptions import ConfigurationError


def test_reference_curves_have_the_right_shapes():
    # exact vs kempe: quadratic separation
    assert kempe_rounds_reference(4096) == pytest.approx(exact_rounds_reference(4096) ** 2)
    # approx reference barely grows with n, grows linearly with log 1/eps
    assert approx_rounds_reference(1 << 20, 0.1) - approx_rounds_reference(1 << 10, 0.1) < 1.1
    assert approx_rounds_reference(1024, 0.01) > approx_rounds_reference(1024, 0.1) + 3
    # sampling is 1/eps^2
    assert sampling_rounds_reference(1024, 0.05) == pytest.approx(
        4 * sampling_rounds_reference(1024, 0.1)
    )
    # doubling reference is doubly logarithmic
    assert doubling_rounds_reference(1 << 16, 0.1) < 25
    # lower bound grows with both parameters
    assert lower_bound_reference(1 << 16, 0.1) >= lower_bound_reference(256, 0.1)
    assert lower_bound_reference(1024, 0.01) > lower_bound_reference(1024, 0.1)


def test_reference_validation():
    with pytest.raises(ConfigurationError):
        exact_rounds_reference(1)
    with pytest.raises(ConfigurationError):
        approx_rounds_reference(1024, 0.0)
    with pytest.raises(ConfigurationError):
        robust_slowdown_reference(1.0)


def test_robust_slowdown_reference():
    assert robust_slowdown_reference(0.0) == 1.0
    assert robust_slowdown_reference(0.5) > 1.0
    assert robust_slowdown_reference(0.9) > robust_slowdown_reference(0.5)


def test_measure_approx_trial_and_summaries():
    values = distinct_uniform(512, rng=1)
    trial = measure_approx_trial(values, phi=0.5, eps=0.15, rng=2)
    assert trial.n == 512
    assert trial.error <= 0.15
    assert trial.succeeded

    trials = [trial, TrialSummary(512, 0.5, 0.15, 40, 0.3, 0.5, False)]
    assert success_fraction(trials) == 0.5
    summary = summarize_errors(trials)
    assert summary["trials"] == 2
    assert summary["max_error"] == 0.3
    assert summary["success_fraction"] == 0.5


def test_summaries_require_trials():
    with pytest.raises(ConfigurationError):
        success_fraction([])
    with pytest.raises(ConfigurationError):
        summarize_errors([])


def test_geometric_means():
    rows = [{"x": 1.0}, {"x": 4.0}, {"x": 16.0}]
    assert geometric_means(rows, "x") == pytest.approx(4.0)
    with pytest.raises(ConfigurationError):
        geometric_means([{"x": 0.0}], "x")


def test_format_table_alignment_and_title():
    rows = [{"n": 1024, "rounds": 41.5}, {"n": 2048, "rounds": 44.0}]
    text = format_table(rows, title="demo")
    lines = text.splitlines()
    assert lines[0] == "demo"
    assert "n" in lines[1] and "rounds" in lines[1]
    assert len(lines) == 5


def test_format_table_column_subset_and_errors():
    rows = [{"a": 1, "b": 2}]
    text = format_table(rows, columns=["b"])
    assert "a" not in text.splitlines()[0]
    with pytest.raises(ConfigurationError):
        format_table([])


def test_rows_to_csv():
    rows = [{"a": 1, "b": 0.5}, {"a": 2, "b": 1.0}]
    csv_text = rows_to_csv(rows)
    lines = csv_text.strip().splitlines()
    assert lines[0] == "a,b"
    assert lines[1] == "1,0.5"
    assert lines[2] == "2,1"
    with pytest.raises(ConfigurationError):
        rows_to_csv([])
