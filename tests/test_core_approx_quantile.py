"""Tests for the ε-approximate φ-quantile algorithm (Theorem 1.2 / 2.1)."""

import numpy as np
import pytest

from repro.core.approx_quantile import approximate_quantile, min_supported_eps
from repro.datasets.generators import distinct_uniform, zipf_values
from repro.exceptions import ConfigurationError
from repro.gossip.network import GossipNetwork
from repro.utils.stats import fraction_within_eps, rank_error


def test_estimate_within_eps_across_phis(medium_values):
    eps = 0.1
    for seed, phi in enumerate((0.1, 0.25, 0.5, 0.75, 0.9)):
        result = approximate_quantile(medium_values, phi=phi, eps=eps, rng=seed)
        assert rank_error(medium_values, result.estimate, phi) <= eps, phi


def test_most_nodes_agree_within_eps(medium_values):
    phi, eps = 0.3, 0.1
    result = approximate_quantile(medium_values, phi=phi, eps=eps, rng=3)
    assert fraction_within_eps(medium_values, result.estimates, phi, eps) > 0.9


def test_rounds_scale_with_log_one_over_eps(medium_values):
    coarse = approximate_quantile(medium_values, phi=0.5, eps=0.2, rng=1)
    fine = approximate_quantile(medium_values, phi=0.5, eps=0.05, rng=1)
    assert fine.rounds > coarse.rounds
    assert fine.rounds < 4 * coarse.rounds  # only logarithmically more


def test_rounds_nearly_flat_in_n():
    """Doubling n several times barely changes the round count (log log n)."""
    eps = 0.1
    small = approximate_quantile(distinct_uniform(512, rng=1), phi=0.5, eps=eps, rng=2)
    large = approximate_quantile(distinct_uniform(8192, rng=1), phi=0.5, eps=eps, rng=2)
    assert large.rounds - small.rounds <= 10


def test_extreme_phi_values(medium_values):
    eps = 0.1
    low = approximate_quantile(medium_values, phi=0.0, eps=eps, rng=4)
    high = approximate_quantile(medium_values, phi=1.0, eps=eps, rng=5)
    assert rank_error(medium_values, low.estimate, 0.0) <= eps
    assert rank_error(medium_values, high.estimate, 1.0) <= eps


def test_works_on_skewed_distributions():
    values = zipf_values(2048, exponent=1.6, rng=9)
    result = approximate_quantile(values, phi=0.9, eps=0.05, rng=10)
    assert rank_error(values, result.estimate, 0.9) <= 0.05


def test_result_metadata(medium_values):
    result = approximate_quantile(medium_values, phi=0.4, eps=0.1, rng=6)
    assert result.n == medium_values.size
    assert result.phi == 0.4
    assert result.eps == 0.1
    assert result.estimates.shape == (medium_values.size,)
    assert result.rounds == result.metrics.rounds
    assert result.phase1 is not None and result.phase2 is not None
    summary = result.summary()
    assert summary["rounds"] == result.rounds


def test_track_bands_collects_stats(medium_values):
    result = approximate_quantile(
        medium_values, phi=0.25, eps=0.1, rng=7, track_bands=True
    )
    assert len(result.phase1.stats) == result.phase1.iterations
    assert len(result.phase2.stats) == result.phase2.iterations


def test_existing_network_and_shared_metrics(medium_values):
    from repro.gossip.metrics import NetworkMetrics

    shared = NetworkMetrics(keep_history=False)
    network = GossipNetwork(medium_values, rng=8, metrics=shared, keep_history=False)
    result = approximate_quantile(network=network, phi=0.5, eps=0.1)
    assert shared.rounds == result.rounds
    with pytest.raises(ConfigurationError):
        approximate_quantile(values=medium_values, network=network)


def test_validation_errors(medium_values):
    with pytest.raises(ConfigurationError):
        approximate_quantile(medium_values, phi=1.2, eps=0.1)
    with pytest.raises(ConfigurationError):
        approximate_quantile(medium_values, phi=0.5, eps=0.0)
    with pytest.raises(ConfigurationError):
        approximate_quantile(medium_values, phi=0.5, eps=0.7)
    with pytest.raises(ConfigurationError):
        approximate_quantile()


def test_min_supported_eps_decreases_with_n():
    assert min_supported_eps(10**6) < min_supported_eps(10**3)
    with pytest.raises(ConfigurationError):
        min_supported_eps(1)


def test_deterministic_given_seed(medium_values):
    a = approximate_quantile(medium_values, phi=0.6, eps=0.1, rng=42)
    b = approximate_quantile(medium_values, phi=0.6, eps=0.1, rng=42)
    assert a.estimate == b.estimate
    assert np.array_equal(a.estimates, b.estimates)
