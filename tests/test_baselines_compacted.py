"""Tests for the Appendix A.1 compacted doubling baseline."""

import pytest

from repro.baselines.compacted_doubling import (
    compacted_buffer_capacity,
    compacted_doubling_quantile,
)
from repro.baselines.doubling import doubling_quantile
from repro.exceptions import ConfigurationError
from repro.utils.stats import rank_error


def test_capacity_formula_monotone():
    assert compacted_buffer_capacity(1024, 0.05) > compacted_buffer_capacity(1024, 0.2)
    assert compacted_buffer_capacity(1 << 20, 0.1) >= compacted_buffer_capacity(256, 0.1)
    with pytest.raises(ConfigurationError):
        compacted_buffer_capacity(1, 0.1)


def test_estimates_within_eps(small_values):
    result = compacted_doubling_quantile(small_values, phi=0.6, eps=0.1, rng=1)
    assert rank_error(small_values, result.estimate, 0.6) <= 0.1 + 0.05
    errors = [rank_error(small_values, float(v), 0.6) for v in result.estimates]
    assert sum(e <= 0.2 for e in errors) / len(errors) > 0.9


def test_message_size_much_smaller_than_plain_doubling(small_values):
    plain = doubling_quantile(small_values, phi=0.5, eps=0.05, rng=2)
    compacted = compacted_doubling_quantile(small_values, phi=0.5, eps=0.05, rng=2)
    assert compacted.max_message_bits < plain.max_message_bits / 2
    # but compaction still represents as many samples as plain doubling
    assert compacted.represented_samples >= plain.buffer_size / 2


def test_buffer_never_exceeds_capacity(small_values):
    result = compacted_doubling_quantile(small_values, phi=0.5, eps=0.1, rng=3)
    # message bits ~ capacity entries; allow header slack
    assert result.max_message_bits <= 64 * result.capacity + 64


def test_rounds_are_doubly_logarithmic(small_values):
    result = compacted_doubling_quantile(small_values, phi=0.5, eps=0.1, rng=4)
    assert result.rounds <= 20


def test_explicit_capacity_and_target(small_values):
    result = compacted_doubling_quantile(
        small_values, phi=0.5, eps=0.2, rng=5, capacity=32, target_samples=200
    )
    assert result.capacity == 32
    assert result.represented_samples >= 200


def test_validation(small_values):
    with pytest.raises(ConfigurationError):
        compacted_doubling_quantile(small_values, phi=-0.1, eps=0.1)
    with pytest.raises(ConfigurationError):
        compacted_doubling_quantile(small_values, phi=0.5, eps=1.5)
    with pytest.raises(ConfigurationError):
        compacted_doubling_quantile([1.0], phi=0.5, eps=0.1)
