"""Tests for the experiment harness (small-parameter runs of E1-E9)."""

import pytest

from repro.exceptions import ConfigurationError
from repro.experiments import (
    ablations,
    approx_rounds,
    baselines_compare,
    exact_rounds,
    lower_bound,
    message_size,
    robustness,
    schedule_validation,
    self_rank,
    token_distribution,
    churn_sweep,
    topology_sweep,
)
from repro.experiments.runner import REGISTRY, run_experiment


def test_registry_contains_all_experiments():
    assert len(REGISTRY) == 14
    for spec in REGISTRY.values():
        assert spec.columns
        assert spec.claim


def test_ablations_rows():
    rows = ablations.run(n=512, phi=0.25, eps=0.15, trials=1, vote_sizes=(1, 15), seed=11)
    by_key = {(row["ablation"], row["setting"]): row for row in rows}
    paper = by_key[("phase-one", "phase I + phase II (paper)")]
    no_phase1 = by_key[("phase-one", "phase II only (ablated)")]
    # skipping Phase I collapses the estimate towards the median
    assert no_phase1["mean_error"] > paper["mean_error"]
    assert no_phase1["mean_error"] > 0.1
    # the K = 15 vote is at least as reliable as a single sample
    assert (
        by_key[("final-vote-size", "K=15")]["node_success_fraction"]
        >= by_key[("final-vote-size", "K=1")]["node_success_fraction"]
    )


def test_exact_rounds_rows_and_shape():
    rows = exact_rounds.run(sizes=(128, 512), phis=(0.5,), trials=1, seed=1)
    assert len(rows) == 2
    for row in rows:
        assert row["tournament_correct"] == 1.0
        assert row["kempe_correct"] == 1.0
        assert row["kempe_rounds"] > row["tournament_rounds"] * 0.5
    # quadratic-vs-linear separation: the normalised Kempe cost should not
    # shrink relative to the tournament cost as n grows
    assert rows[1]["speedup"] >= 0.8 * rows[0]["speedup"]


def test_approx_rounds_rows():
    rows = approx_rounds.run(sizes=(256, 1024), eps_values=(0.15,), phis=(0.5,), trials=1, seed=2)
    assert len(rows) == 2
    for row in rows:
        assert row["max_error"] <= 0.15 + 1e-9
        assert row["rounds"] > 0
    # near-flat growth in n
    assert rows[1]["rounds"] <= rows[0]["rounds"] + 12


def test_lower_bound_rows():
    rows = lower_bound.run(sizes=(1024,), eps_values=(0.1, 0.05), trials=1, seed=3)
    assert len(rows) == 2
    for row in rows:
        assert row["rounds_to_all_informed"] >= row["theorem_bound"] - 1


def test_robustness_rows():
    rows = robustness.run(sizes=(256,), mus=(0.0, 0.3), eps=0.15, trials=1, seed=4)
    assert len(rows) == 2
    clean, faulty = rows
    assert faulty["rounds"] >= clean["rounds"]
    assert faulty["answered_fraction"] > 0.9


def test_self_rank_rows():
    rows = self_rank.run(workloads=("distinct",), sizes=(256,), eps_values=(0.2,), seed=5)
    # one row per execution mode of the same (workload, n, eps) cell
    assert [row["mode"] for row in rows] == ["fused", "sequential"]
    by_mode = {row["mode"]: row for row in rows}
    for row in rows:
        assert row["fraction_within_2eps"] > 0.9
        assert row["grid_queries"] == 4
    # the fused pass runs one lane-chunk, max-of-lanes rounds
    assert by_mode["fused"]["chunks"] == 1
    assert by_mode["sequential"]["chunks"] == 4
    assert by_mode["fused"]["rounds"] < by_mode["sequential"]["rounds"]


def test_schedule_validation_rows():
    rows = schedule_validation.run(sizes=(512,), phis=(0.25,), eps_values=(0.1,), seed=6)
    assert len(rows) == 1
    row = rows[0]
    assert row["phase1_iterations"] <= row["phase1_bound"] + 1
    assert row["phase2_iterations"] <= row["phase2_bound"] + 1
    assert row["max_trajectory_deviation"] < 0.1


def test_baselines_compare_rows():
    rows = baselines_compare.run(n=256, eps=0.15, phi=0.5, trials=1, seed=7)
    by_name = {row["algorithm"]: row for row in rows}
    assert set(by_name) == {"tournament", "sampling", "doubling", "compacted-doubling"}
    assert by_name["sampling"]["rounds"] > by_name["tournament"]["rounds"]
    assert by_name["doubling"]["max_message_bits"] > by_name["tournament"]["max_message_bits"]


def test_message_size_rows():
    rows = message_size.run(sizes=(256,), eps_values=(0.1,), seed=8)
    assert len(rows) == 1
    row = rows[0]
    assert row["tournament_bits"] < row["compacted_bits"] < row["doubling_bits"]


def test_message_size_formula_only_mode():
    rows = message_size.run(sizes=(1 << 14,), eps_values=(0.01,), measure=False)
    assert rows[0]["doubling_bits"] > rows[0]["compacted_bits"]


def test_token_distribution_rows():
    rows = token_distribution.run(sizes=(256,), mus=(0.0,), trials=1, seed=9)
    assert len(rows) == 1
    assert rows[0]["max_tokens_per_node"] <= 16
    assert rows[0]["engine"] == "vectorized"  # the "auto" default


def test_token_distribution_engine_axis():
    loop_rows = token_distribution.run(
        sizes=(256,), mus=(0.0,), trials=1, seed=9, engine="loop"
    )
    assert loop_rows[0]["engine"] == "loop"
    assert loop_rows[0]["max_tokens_per_node"] <= 16


def test_exact_scale_rows():
    from repro.experiments import exact_scale

    rows = exact_scale.run(sizes=(1024,), phis=(0.5,), trials=1, seed=21)
    # default dtype sweep: one float64 row and one float32 parity row
    assert len(rows) == 2
    by_dtype = {row["dtype"]: row for row in rows}
    assert set(by_dtype) == {"float64", "float32"}
    for row in rows:
        assert row["fidelity"] == "simulated"
        assert row["correct"] == 1.0
        assert row["rank_error"] == 0.0
        assert row["rounds"] > 0
        assert row["wall_s"] > 0
    # float32 keys are exact below 2**24 ranks: parity with float64 holds,
    # and the same cell seed replays the same gossip schedule exactly
    assert by_dtype["float32"]["f32_parity"] == 1.0
    assert "f32_parity" not in by_dtype["float64"]
    assert by_dtype["float32"]["rounds"] == by_dtype["float64"]["rounds"]


def test_exact_scale_parity_independent_of_dtype_order():
    from repro.experiments import exact_scale

    rows = exact_scale.run(sizes=(512,), phis=(0.5,), trials=1, seed=21,
                           dtypes=("float32", "float64"))
    f32 = next(row for row in rows if row["dtype"] == "float32")
    assert f32["f32_parity"] == 1.0


def test_exact_scale_single_dtype_axis():
    from repro.experiments import exact_scale

    rows = exact_scale.run(sizes=(512,), phis=(0.5,), trials=1, seed=3,
                           dtypes=("float64",))
    assert len(rows) == 1
    assert rows[0]["dtype"] == "float64"
    assert "f32_parity" not in rows[0]
    import pytest
    from repro.exceptions import ConfigurationError
    with pytest.raises(ConfigurationError):
        exact_scale.run(sizes=(512,), dtypes=("float16",))


def test_exact_scale_rows_identical_for_any_worker_count():
    from repro.experiments import exact_scale

    kwargs = dict(sizes=(512,), phis=(0.5,), trials=2, seed=5)
    serial = exact_scale.run(workers=1, **kwargs)
    parallel = exact_scale.run(workers=2, **kwargs)
    # wall times differ between runs; everything else must match exactly
    for a, b in zip(serial, parallel):
        a = {k: v for k, v in a.items() if k != "wall_s"}
        b = {k: v for k, v in b.items() if k != "wall_s"}
        assert a == b


def test_topology_sweep_rows():
    rows = topology_sweep.run(
        sizes=(512,),
        topologies=("complete", "regular", "ring"),
        protocols=("push-sum", "broadcast"),
        degree=8,
        max_rounds=300,
        trials=1,
        seed=10,
    )
    assert len(rows) == 6
    by_key = {(row["topology"], row["protocol"]): row for row in rows}
    # the complete graph and the expander converge; their gaps are constants
    assert by_key[("complete", "push-sum")]["converged_fraction"] == 1.0
    assert by_key[("regular", "push-sum")]["converged_fraction"] == 1.0
    assert by_key[("regular", "push-sum")]["spectral_gap"] > 0.1
    # the ring mixes polynomially slowly: it must need far more rounds (or
    # hit the cap) and its spectral gap collapses
    assert (
        by_key[("ring", "push-sum")]["rounds"]
        > 5 * by_key[("regular", "push-sum")]["rounds"]
    )
    assert by_key[("ring", "push-sum")]["spectral_gap"] < 0.02
    # broadcast informs everyone on every connected topology at this size
    for topo in ("complete", "regular", "ring"):
        assert by_key[(topo, "broadcast")]["quality"] == 1.0


def test_topology_sweep_rows_identical_for_any_worker_count():
    kwargs = dict(
        sizes=(256,),
        topologies=("complete", "small-world"),
        protocols=("push-sum", "approx-quantile"),
        max_rounds=200,
        trials=2,
        seed=6,
    )
    assert topology_sweep.run(workers=1, **kwargs) == topology_sweep.run(
        workers=4, **kwargs
    )


def test_topology_sweep_rejects_unknown_protocol():
    with pytest.raises(ConfigurationError):
        topology_sweep.run(sizes=(64,), protocols=("frisbee",), trials=1)


def test_run_experiment_forwards_topology_kwargs():
    rows_text = run_experiment(
        "topology",
        output="rows",
        sizes=(256,),
        topologies=("regular",),
        protocols=("broadcast",),
        degree=6,
        trials=1,
        seed=2,
    )
    assert "'topology': 'regular'" in rows_text
    with pytest.raises(ConfigurationError):
        run_experiment("schedules", topologies=("ring",), sizes=(256,))


def test_run_experiment_renders_table_and_csv():
    table = run_experiment("schedules", sizes=(256,), seed=10)
    assert "phase1_iterations" in table
    csv_text = run_experiment("schedules", output="csv", sizes=(256,), seed=10)
    assert csv_text.startswith("n,")
    rows_text = run_experiment("schedules", output="rows", sizes=(256,), seed=10)
    assert rows_text.startswith("[")


def test_run_experiment_unknown_name_and_format():
    with pytest.raises(ConfigurationError):
        run_experiment("not-an-experiment")
    with pytest.raises(ConfigurationError):
        run_experiment("schedules", output="yaml", sizes=(256,))


def test_churn_sweep_rows_structure_and_conservation():
    rows = churn_sweep.run(
        sizes=(128,),
        topologies=("complete", "small-world"),
        churn_rates=(0.0, 0.2),
        resample_every=(2,),
        max_rounds=120,
        trials=1,
        seed=6,
    )
    assert len(rows) == 5  # 2 topologies x 2 rates + 1 resample row
    for row in rows:
        assert set(churn_sweep.COLUMNS) <= set(row)
        # mass conservation is exact on every dynamic configuration
        assert row["mass_rel_error"] < 1e-9
    by_key = {(r["process"], r["topology"], r["churn_rate"]): r for r in rows}
    assert by_key[("churn", "complete", 0.0)]["active_fraction"] == 1.0
    assert by_key[("churn", "complete", 0.2)]["active_fraction"] < 0.9
    assert by_key[("resample", "newscast", 0.0)]["resample_every"] == 2


def test_churn_sweep_rows_identical_for_any_worker_count():
    kwargs = dict(
        sizes=(96,), topologies=("complete",), churn_rates=(0.1,),
        resample_every=(1,), max_rounds=80, trials=2, seed=9,
    )
    assert churn_sweep.run(workers=1, **kwargs) == churn_sweep.run(
        workers=3, **kwargs
    )


def test_churn_sweep_rejects_bad_parameters():
    with pytest.raises(ConfigurationError):
        churn_sweep.run(sizes=(64,), churn_rates=(1.2,), trials=1)
    with pytest.raises(ConfigurationError):
        churn_sweep.run(sizes=(64,), resample_every=(0,), trials=1)
    with pytest.raises(ConfigurationError):
        churn_sweep.run(sizes=(64,), failures="cosmic-rays", trials=1)
