"""Property-based tests for the gossip substrate invariants (hypothesis)."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.tokens import distribute_tokens
from repro.gossip.engine import run_protocol
from repro.gossip.network import GossipNetwork
from repro.aggregates.push_sum import PushSumProtocol
from repro.utils.rand import RandomSource

seeds = st.integers(min_value=0, max_value=10_000)


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(min_value=4, max_value=128),
    k=st.integers(min_value=1, max_value=5),
    seed=seeds,
)
def test_pull_batch_partners_are_valid_and_never_self(n, k, seed):
    values = np.arange(float(n))
    network = GossipNetwork(values, rng=seed)
    batch = network.pull(k)
    assert batch.partners.shape == (n, k)
    assert batch.partners.min() >= 0
    assert batch.partners.max() < n
    own = np.arange(n)[:, None]
    assert not np.any(batch.partners == own)
    assert network.rounds == k


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=100),
    rounds=st.integers(min_value=1, max_value=40),
    seed=seeds,
    mu=st.floats(min_value=0.0, max_value=0.8),
)
def test_push_sum_mass_conservation_property(n, rounds, seed, mu):
    values = RandomSource(seed).random(n) * 100.0
    protocol = PushSumProtocol(values, rounds=rounds)
    mass_before = protocol.total_mass
    weight_before = protocol.total_weight
    run_protocol(protocol, rng=seed, failure_model=mu if mu > 0 else None,
                 max_rounds=rounds + 1)
    assert np.isclose(protocol.total_mass, mass_before, rtol=1e-9)
    assert np.isclose(protocol.total_weight, weight_before, rtol=1e-9)


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=32, max_value=256),
    items=st.integers(min_value=1, max_value=8),
    log_mult=st.integers(min_value=0, max_value=3),
    seed=seeds,
)
def test_token_distribution_conservation_property(n, items, log_mult, seed):
    multiplicity = 1 << log_mult
    if items * multiplicity > n:
        return
    rng = RandomSource(seed)
    item_nodes = rng.choice(np.arange(n), size=items, replace=False)
    result = distribute_tokens(item_nodes, multiplicity=multiplicity, n=n, rng=rng.child())
    owned = result.owners[result.owners >= 0]
    # conservation: every item ends with exactly `multiplicity` unit copies
    counts = np.bincount(owned, minlength=items)
    assert np.all(counts == multiplicity)
    # no node holds more than one token at the end (structural) and the
    # number of occupied nodes equals the number of unit tokens
    assert owned.size == items * multiplicity


@settings(max_examples=30, deadline=None)
@given(n=st.integers(min_value=2, max_value=200), seed=seeds)
def test_network_values_are_preserved_until_set(n, seed):
    values = RandomSource(seed).random(n)
    network = GossipNetwork(values, rng=seed)
    network.pull(2)
    assert np.array_equal(network.values, values)  # pulls never mutate values
