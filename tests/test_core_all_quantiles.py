"""Tests for Corollary 1.5 (every node estimates its own quantile)."""

import numpy as np
import pytest

from repro.core.all_quantiles import estimate_all_ranks, true_self_quantiles
from repro.datasets.generators import distinct_uniform, zipf_values
from repro.exceptions import ConfigurationError


def test_true_self_quantiles_is_rank_over_n():
    values = np.array([30.0, 10.0, 20.0, 40.0])
    truth = true_self_quantiles(values)
    assert np.allclose(truth, [0.75, 0.25, 0.5, 1.0])


def test_self_rank_errors_are_bounded(medium_values):
    eps = 0.1
    result = estimate_all_ranks(medium_values, eps=eps, rng=1)
    truth = true_self_quantiles(medium_values)
    errors = np.abs(result.quantile_estimates - truth)
    # Corollary 1.5: error O(eps); allow the grid-plus-query slack of 2 eps
    assert float(np.mean(errors <= 2 * eps)) > 0.95
    assert float(np.mean(errors)) < eps


def test_grid_size_scales_with_one_over_eps(small_values):
    coarse = estimate_all_ranks(small_values, eps=0.25, rng=2)
    fine = estimate_all_ranks(small_values, eps=0.1, rng=3)
    assert fine.grid.size > coarse.grid.size
    assert fine.rounds > coarse.rounds


def test_rounds_are_sum_of_grid_queries(small_values):
    result = estimate_all_ranks(small_values, eps=0.2, rng=4)
    assert result.rounds == result.metrics.rounds
    assert result.grid_values.shape == (result.grid.size, small_values.size)


def test_estimates_are_valid_quantiles(small_values):
    result = estimate_all_ranks(small_values, eps=0.2, rng=5)
    assert np.all(result.quantile_estimates >= 0.0)
    assert np.all(result.quantile_estimates <= 1.0)


def test_monotone_in_value(small_values):
    """Nodes with larger values should not get systematically smaller ranks."""
    result = estimate_all_ranks(small_values, eps=0.1, rng=6)
    order = np.argsort(small_values)
    estimates_sorted = result.quantile_estimates[order]
    # allow local noise but require global monotone trend: compare first and
    # last quartiles of the sorted estimates
    q = small_values.size // 4
    assert estimates_sorted[:q].mean() < estimates_sorted[-q:].mean()


def test_works_on_skewed_data():
    values = zipf_values(512, exponent=1.7, rng=7)
    result = estimate_all_ranks(values, eps=0.1, rng=8)
    truth = true_self_quantiles(values)
    errors = np.abs(result.quantile_estimates - truth)
    assert float(np.mean(errors <= 0.2)) > 0.9


def test_validation_errors(small_values):
    with pytest.raises(ConfigurationError):
        estimate_all_ranks(small_values, eps=0.0)
    with pytest.raises(ConfigurationError):
        estimate_all_ranks(small_values, eps=0.6)
    with pytest.raises(ConfigurationError):
        estimate_all_ranks([1.0, 2.0], eps=0.1)
    with pytest.raises(ConfigurationError):
        estimate_all_ranks(small_values, eps=0.1, query_accuracy=0.0)
    with pytest.raises(ConfigurationError):
        true_self_quantiles([])
