"""Tests for Corollary 1.5 (every node estimates its own quantile)."""

import numpy as np
import pytest

from repro.core.all_quantiles import (
    DEFAULT_MAX_LANES,
    estimate_all_ranks,
    rank_grid,
    true_self_quantiles,
)
from repro.datasets.generators import zipf_values
from repro.exceptions import ConfigurationError
from repro.gossip.metrics import NetworkMetrics
from repro.topology import ring
from repro.utils.rand import RandomSource


def test_true_self_quantiles_is_rank_over_n():
    values = np.array([30.0, 10.0, 20.0, 40.0])
    truth = true_self_quantiles(values)
    assert np.allclose(truth, [0.75, 0.25, 0.5, 1.0])


def test_true_self_quantiles_gives_ties_the_midrank():
    # group of three 2.0s spans sorted ranks 2..4 -> midrank 3
    values = np.array([1.0, 2.0, 2.0, 2.0, 5.0])
    truth = true_self_quantiles(values)
    assert np.allclose(truth, [0.2, 0.6, 0.6, 0.6, 1.0])
    # equal values get equal quantiles, matching what gossip can observe
    assert truth[1] == truth[2] == truth[3]


def test_midrank_ties_do_not_inflate_duplicate_heavy_error():
    """Regression: index-ordered tie ranks charged tied nodes up to the full
    tie width as phantom error; midrank truth charges at most half of it."""
    tie_value = 200.5
    values = np.concatenate(
        [
            np.arange(1.0, 201.0),
            np.full(112, tie_value),
            np.arange(300.0, 500.0),
        ]
    )
    values = values[RandomSource(20).permutation(values.size)]
    result = estimate_all_ranks(values, eps=0.1, rng=22)

    # the pre-PR-6 ground truth: stable argsort, distinct index-ordered ranks
    order = np.argsort(values, kind="stable")
    index_ranks = np.empty(values.size)
    index_ranks[order] = np.arange(1, values.size + 1)
    index_truth = index_ranks / values.size

    group = values == tie_value
    err_midrank = np.abs(result.quantile_estimates - true_self_quantiles(values))
    err_indexed = np.abs(result.quantile_estimates - index_truth)
    # index-order truth spreads the 112-wide tie across ~0.22 of quantile
    # space, so some tied node is always charged far beyond the corollary's
    # bound; midrank truth keeps every tied node inside it
    assert float(err_indexed[group].max()) > float(err_midrank[group].max())
    assert float(err_midrank.max()) <= 0.2


def test_self_rank_errors_are_bounded(medium_values):
    eps = 0.1
    result = estimate_all_ranks(medium_values, eps=eps, rng=1)
    truth = true_self_quantiles(medium_values)
    errors = np.abs(result.quantile_estimates - truth)
    # Corollary 1.5: error O(eps); allow the grid-plus-query slack of 2 eps
    assert float(np.mean(errors <= 2 * eps)) > 0.95
    assert float(np.mean(errors)) < eps


def test_grid_size_scales_with_one_over_eps(small_values):
    coarse = estimate_all_ranks(small_values, eps=0.25, rng=2)
    fine = estimate_all_ranks(small_values, eps=0.1, rng=3)
    assert fine.grid.size > coarse.grid.size
    assert fine.rounds > coarse.rounds


def test_rounds_match_metrics(small_values):
    result = estimate_all_ranks(small_values, eps=0.2, rng=4)
    assert result.rounds == result.metrics.rounds
    assert result.grid_values.shape == (result.grid.size, small_values.size)


def test_estimates_are_valid_quantiles(small_values):
    result = estimate_all_ranks(small_values, eps=0.2, rng=5)
    assert np.all(result.quantile_estimates >= 0.0)
    assert np.all(result.quantile_estimates <= 1.0)


def test_monotone_in_value(small_values):
    """Nodes with larger values should not get systematically smaller ranks."""
    result = estimate_all_ranks(small_values, eps=0.1, rng=6)
    order = np.argsort(small_values)
    estimates_sorted = result.quantile_estimates[order]
    # allow local noise but require global monotone trend: compare first and
    # last quartiles of the sorted estimates
    q = small_values.size // 4
    assert estimates_sorted[:q].mean() < estimates_sorted[-q:].mean()


def test_works_on_skewed_data():
    values = zipf_values(512, exponent=1.7, rng=7)
    result = estimate_all_ranks(values, eps=0.1, rng=8)
    truth = true_self_quantiles(values)
    errors = np.abs(result.quantile_estimates - truth)
    assert float(np.mean(errors <= 0.2)) > 0.9


# ---- fused execution --------------------------------------------------------


def test_fused_is_the_default_and_runs_one_chunk(small_values):
    result = estimate_all_ranks(small_values, eps=0.1, rng=9)
    assert result.fused
    assert result.grid.size == 9
    assert result.chunks == 1
    assert result.round_windows == [(0, result.rounds)]


def test_fused_round_count_is_far_below_sequential(small_values):
    fused = estimate_all_ranks(small_values, eps=0.1, rng=10)
    sequential = estimate_all_ranks(small_values, eps=0.1, rng=10, fused=False)
    assert not sequential.fused
    assert sequential.chunks == sequential.grid.size
    assert fused.rounds < sequential.rounds
    # max-of-lanes: the single fused chunk cannot exceed the largest
    # individual query window of the sequential reference
    longest = max(stop - start for start, stop in sequential.round_windows)
    assert fused.rounds <= longest


def test_lane_chunking_respects_max_lanes(small_values):
    result = estimate_all_ranks(small_values, eps=0.1, rng=11, max_lanes=4)
    assert result.grid.size == 9
    assert result.chunks == 3  # 4 + 4 + 1 lanes
    # windows tile this computation's rounds contiguously
    assert result.round_windows[0][0] == 0
    for (_, stop), (start, _) in zip(
        result.round_windows, result.round_windows[1:]
    ):
        assert stop == start
    assert result.round_windows[-1][1] == result.rounds
    # estimates stay within the corollary's bound under chunking
    errors = np.abs(
        result.quantile_estimates - true_self_quantiles(small_values)
    )
    assert float(np.mean(errors <= 0.2)) > 0.95


def test_fused_single_lane_chunks_match_sequential_exactly(small_values):
    """max_lanes=1 consumes the sequential child streams one-to-one, so the
    (n, 1)-lane runs reproduce the single-lane estimates bit-for-bit."""
    fused = estimate_all_ranks(small_values, eps=0.2, rng=12, max_lanes=1)
    sequential = estimate_all_ranks(small_values, eps=0.2, rng=12, fused=False)
    assert np.array_equal(fused.grid_values, sequential.grid_values)
    assert np.array_equal(
        fused.quantile_estimates, sequential.quantile_estimates
    )
    assert fused.rounds == sequential.rounds


def test_fused_supports_failure_model(small_values):
    result = estimate_all_ranks(
        small_values, eps=0.2, rng=13, failure_model=0.2
    )
    truth = true_self_quantiles(small_values)
    errors = np.abs(result.quantile_estimates - truth)
    assert float(np.mean(errors <= 0.4)) > 0.9
    assert result.metrics.failed_node_rounds > 0


# ---- parameter threading ----------------------------------------------------


def test_topology_is_threaded_through_both_paths(small_values):
    topology = ring(small_values.size, k=8)
    truth = true_self_quantiles(small_values)
    for fused in (True, False):
        result = estimate_all_ranks(
            small_values, eps=0.2, rng=14, topology=topology, fused=fused
        )
        errors = np.abs(result.quantile_estimates - truth)
        # a fat ring mixes slower than the complete graph but the grid
        # bracket still lands most nodes near their rank
        assert float(np.mean(errors <= 0.4)) > 0.8


def test_topology_size_mismatch_is_rejected(small_values):
    with pytest.raises(ConfigurationError):
        estimate_all_ranks(
            small_values, eps=0.2, rng=15, topology=ring(64, k=2)
        )


def test_dtype_is_threaded(small_values):
    result = estimate_all_ranks(
        small_values, eps=0.2, rng=16, dtype="float32"
    )
    assert result.grid_values.dtype == np.float32
    truth = true_self_quantiles(small_values)
    errors = np.abs(result.quantile_estimates - truth)
    assert float(np.mean(errors <= 0.4)) > 0.9


def test_unsupported_dtype_is_rejected(small_values):
    with pytest.raises(ConfigurationError):
        estimate_all_ranks(small_values, eps=0.2, rng=17, dtype="int32")


def test_engine_override_is_validated_and_restored(small_values):
    from repro.gossip.engine import get_default_engine

    before = get_default_engine()
    estimate_all_ranks(small_values, eps=0.25, rng=18, engine="vectorized")
    assert get_default_engine() == before
    with pytest.raises(ConfigurationError):
        estimate_all_ranks(small_values, eps=0.25, rng=18, engine="turbo")
    assert get_default_engine() == before


def test_invalid_peer_sampling_is_rejected(small_values):
    with pytest.raises(ConfigurationError):
        estimate_all_ranks(
            small_values, eps=0.2, rng=19,
            topology=ring(small_values.size, k=4),
            peer_sampling="psychic",
        )


# ---- metrics / history attribution ------------------------------------------


def test_keep_history_records_every_round(small_values):
    result = estimate_all_ranks(
        small_values, eps=0.25, rng=20, keep_history=True
    )
    assert result.metrics.keep_history
    assert len(result.metrics.history) == result.rounds
    labels = {record.label for record in result.metrics.history}
    assert labels <= {"2-tournament", "3-tournament", "3-tournament-vote"}
    # every round lands inside exactly one attributed window
    for record in result.metrics.history:
        homes = [
            (start, stop)
            for start, stop in result.round_windows
            if start <= record.round_index < stop
        ]
        assert len(homes) == 1


def test_default_still_skips_history(small_values):
    result = estimate_all_ranks(small_values, eps=0.25, rng=21)
    assert not result.metrics.keep_history
    assert result.metrics.history == []


def test_caller_supplied_metrics_accumulate(small_values):
    metrics = NetworkMetrics(keep_history=True)
    metrics.charge_rounds(7, label="pre-existing")
    result = estimate_all_ranks(
        small_values, eps=0.25, rng=22, metrics=metrics
    )
    assert result.metrics is metrics
    # rounds reports only this computation; windows are absolute
    assert metrics.rounds == 7 + result.rounds
    assert result.round_windows[0][0] == 7
    assert result.round_windows[-1][1] == metrics.rounds
    assert len(metrics.history) == metrics.rounds


def test_sequential_windows_attribute_each_grid_query(small_values):
    result = estimate_all_ranks(
        small_values, eps=0.2, rng=23, fused=False, keep_history=True
    )
    assert len(result.round_windows) == result.grid.size
    assert sum(stop - start for start, stop in result.round_windows) == (
        result.rounds
    )


# ---- validation -------------------------------------------------------------


def test_validation_errors(small_values):
    with pytest.raises(ConfigurationError):
        estimate_all_ranks(small_values, eps=0.0)
    with pytest.raises(ConfigurationError):
        estimate_all_ranks(small_values, eps=0.6)
    with pytest.raises(ConfigurationError):
        estimate_all_ranks([1.0, 2.0], eps=0.1)
    with pytest.raises(ConfigurationError):
        estimate_all_ranks(small_values, eps=0.1, query_accuracy=0.0)
    with pytest.raises(ConfigurationError):
        estimate_all_ranks(small_values, eps=0.1, max_lanes=0)
    with pytest.raises(ConfigurationError):
        true_self_quantiles([])


def test_rank_grid_shape():
    assert np.allclose(rank_grid(0.25), [0.25, 0.5, 0.75])
    assert rank_grid(0.05).size == 19
    assert np.all(rank_grid(0.3) < 1.0)
