"""Tests for Algorithm 2 (3-TOURNAMENT)."""

import numpy as np
import pytest

from repro.core.schedules import three_tournament_schedule
from repro.core.three_tournament import (
    DEFAULT_FINAL_SAMPLES,
    median_band_thresholds,
    run_three_tournament,
)
from repro.exceptions import ConfigurationError
from repro.gossip.network import GossipNetwork
from repro.utils.stats import rank_error


def test_median_band_thresholds():
    values = np.arange(1.0, 101.0)
    lo, hi = median_band_thresholds(values, eps=0.1)
    assert lo == 40.0
    assert hi == 60.0


def test_outputs_are_near_median(medium_values):
    eps = 0.1
    network = GossipNetwork(medium_values, rng=1, keep_history=False)
    result = run_three_tournament(network, eps=eps)
    # every node's output is an eps-approximate median of the *input* values
    errors = [rank_error(medium_values, float(v), 0.5) for v in result.final_values]
    assert np.mean(errors) < eps
    assert np.quantile(errors, 0.95) <= eps + 0.02


def test_out_of_band_mass_shrinks(medium_values):
    eps = 0.1
    network = GossipNetwork(medium_values, rng=2, keep_history=False)
    result = run_three_tournament(network, eps=eps, track_band=True)
    first = result.stats[0]
    last = result.stats[-1]
    assert last.high_fraction < first.high_fraction
    assert last.low_fraction < first.low_fraction
    # After the last iteration the out-of-band mass is below ~2T = 2 n^{-1/3}
    # (Lemma 2.16); allow a small additive slack at this network size.
    threshold = 2.0 * medium_values.size ** (-1.0 / 3.0) + 0.02
    assert last.high_fraction < threshold
    assert last.low_fraction < threshold


def test_round_accounting_includes_final_vote(medium_values):
    eps = 0.1
    schedule = three_tournament_schedule(eps, medium_values.size)
    network = GossipNetwork(medium_values, rng=3, keep_history=False)
    result = run_three_tournament(network, eps=eps, schedule=schedule, final_samples=7)
    assert result.rounds == schedule.rounds + 7
    assert network.rounds == result.rounds


def test_final_samples_validation(small_values):
    network = GossipNetwork(small_values, rng=4, keep_history=False)
    with pytest.raises(ConfigurationError):
        run_three_tournament(network, eps=0.1, final_samples=4)
    with pytest.raises(ConfigurationError):
        run_three_tournament(network, eps=0.1, final_samples=0)


def test_default_final_samples_is_odd():
    assert DEFAULT_FINAL_SAMPLES % 2 == 1


def test_outputs_come_from_original_values(medium_values):
    network = GossipNetwork(medium_values, rng=5, keep_history=False)
    result = run_three_tournament(network, eps=0.15)
    assert set(np.unique(result.final_values)).issubset(set(medium_values.tolist()))


def test_schedule_length_matches(medium_values):
    eps = 0.05
    schedule = three_tournament_schedule(eps, medium_values.size)
    network = GossipNetwork(medium_values, rng=6, keep_history=False)
    result = run_three_tournament(network, eps=eps, schedule=schedule)
    assert result.iterations == schedule.num_iterations
