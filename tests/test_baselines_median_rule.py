"""Tests for the Doerr et al. median-rule baseline."""

import pytest

from repro.baselines.median_rule import median_rule
from repro.exceptions import ConfigurationError


def test_converges_near_the_median(medium_values):
    result = median_rule(medium_values, rng=1)
    assert abs(result.consensus_quantile - 0.5) < 0.1
    assert result.consensus_fraction > 0.9


def test_rounds_are_three_per_iteration(small_values):
    result = median_rule(small_values, rng=2, iterations=10)
    assert result.iterations == 10
    assert result.rounds == 30


def test_default_iterations_logarithmic(small_values):
    result = median_rule(small_values, rng=3)
    assert result.iterations <= 3 * 8 + 1  # 3 * log2(256)


def test_under_failures_still_converges(medium_values):
    result = median_rule(medium_values, rng=4, failure_model=0.3, constant=4.0)
    assert abs(result.consensus_quantile - 0.5) < 0.15


def test_values_remain_in_support(small_values):
    result = median_rule(small_values, rng=5)
    assert set(result.values.tolist()).issubset(set(small_values.tolist()))


def test_validation(small_values):
    with pytest.raises(ConfigurationError):
        median_rule([1.0])
    with pytest.raises(ConfigurationError):
        median_rule(small_values, iterations=0)
