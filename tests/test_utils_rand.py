"""Tests for repro.utils.rand."""

import numpy as np
import pytest

from repro.utils.rand import RandomSource, iter_trial_rngs, resolve_seed_sequence, spawn_rngs


def test_same_seed_gives_same_stream():
    a = RandomSource(42)
    b = RandomSource(42)
    assert np.array_equal(a.integers(0, 100, size=10), b.integers(0, 100, size=10))


def test_different_seeds_give_different_streams():
    a = RandomSource(1)
    b = RandomSource(2)
    assert not np.array_equal(a.integers(0, 10**9, size=10), b.integers(0, 10**9, size=10))


def test_spawned_children_are_independent_and_deterministic():
    children_a = RandomSource(7).spawn(3)
    children_b = RandomSource(7).spawn(3)
    for ca, cb in zip(children_a, children_b):
        assert np.array_equal(ca.integers(0, 10**6, size=5), cb.integers(0, 10**6, size=5))
    draws = [tuple(c.integers(0, 10**9, size=4)) for c in RandomSource(7).spawn(3)]
    assert len(set(draws)) == 3


def test_child_of_random_source_seed():
    parent = RandomSource(3)
    child = RandomSource(parent)
    assert isinstance(child, RandomSource)


def test_spawn_negative_count_raises():
    with pytest.raises(ValueError):
        RandomSource(0).spawn(-1)


def test_uniform_partners_shape_and_range():
    rng = RandomSource(5)
    partners = rng.uniform_partners(50, 3)
    assert partners.shape == (50, 3)
    assert partners.min() >= 0
    assert partners.max() < 50


def test_uniform_partners_validation():
    rng = RandomSource(5)
    with pytest.raises(ValueError):
        rng.uniform_partners(0, 2)
    with pytest.raises(ValueError):
        rng.uniform_partners(5, -1)


def test_spawn_rngs_and_iter_trial_rngs():
    rngs = spawn_rngs(9, 4)
    assert len(rngs) == 4
    assert len(list(iter_trial_rngs(9, 4))) == 4


def test_resolve_seed_sequence_deterministic():
    a = resolve_seed_sequence([1, 2, 3])
    b = resolve_seed_sequence([1, 2, 3])
    assert np.array_equal(a.integers(0, 1000, size=5), b.integers(0, 1000, size=5))


def test_permutation_and_choice():
    rng = RandomSource(11)
    perm = rng.permutation(np.arange(10))
    assert sorted(perm.tolist()) == list(range(10))
    picked = rng.choice(np.arange(10), size=3, replace=False)
    assert len(set(picked.tolist())) == 3
