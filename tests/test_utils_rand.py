"""Tests for repro.utils.rand."""

import numpy as np
import pytest

from repro.utils.rand import RandomSource, iter_trial_rngs, resolve_seed_sequence, spawn_rngs


def test_same_seed_gives_same_stream():
    a = RandomSource(42)
    b = RandomSource(42)
    assert np.array_equal(a.integers(0, 100, size=10), b.integers(0, 100, size=10))


def test_different_seeds_give_different_streams():
    a = RandomSource(1)
    b = RandomSource(2)
    assert not np.array_equal(a.integers(0, 10**9, size=10), b.integers(0, 10**9, size=10))


def test_spawned_children_are_independent_and_deterministic():
    children_a = RandomSource(7).spawn(3)
    children_b = RandomSource(7).spawn(3)
    for ca, cb in zip(children_a, children_b):
        assert np.array_equal(ca.integers(0, 10**6, size=5), cb.integers(0, 10**6, size=5))
    draws = [tuple(c.integers(0, 10**9, size=4)) for c in RandomSource(7).spawn(3)]
    assert len(set(draws)) == 3


def test_child_of_random_source_seed():
    parent = RandomSource(3)
    child = RandomSource(parent)
    assert isinstance(child, RandomSource)


def test_spawn_negative_count_raises():
    with pytest.raises(ValueError):
        RandomSource(0).spawn(-1)


def test_uniform_partners_shape_and_range():
    rng = RandomSource(5)
    partners = rng.uniform_partners(50, 3)
    assert partners.shape == (50, 3)
    assert partners.min() >= 0
    assert partners.max() < 50


def test_uniform_partners_validation():
    rng = RandomSource(5)
    with pytest.raises(ValueError):
        rng.uniform_partners(0, 2)
    with pytest.raises(ValueError):
        rng.uniform_partners(5, -1)


def test_spawn_rngs_and_iter_trial_rngs():
    rngs = spawn_rngs(9, 4)
    assert len(rngs) == 4
    assert len(list(iter_trial_rngs(9, 4))) == 4


def test_resolve_seed_sequence_deterministic():
    a = resolve_seed_sequence([1, 2, 3])
    b = resolve_seed_sequence([1, 2, 3])
    assert np.array_equal(a.integers(0, 1000, size=5), b.integers(0, 1000, size=5))


def test_permutation_and_choice():
    rng = RandomSource(11)
    perm = rng.permutation(np.arange(10))
    assert sorted(perm.tolist()) == list(range(10))
    picked = rng.choice(np.arange(10), size=3, replace=False)
    assert len(set(picked.tolist())) == 3


# ---- vectorized self-target rejection helpers -------------------------------


def test_draw_targets_excluding_never_returns_forbidden():
    from repro.utils.rand import draw_targets_excluding

    rng = RandomSource(3)
    forbidden = np.arange(200) % 7  # lots of repeated forbidden values
    targets = draw_targets_excluding(rng, 7, forbidden)
    assert targets.shape == forbidden.shape
    assert np.all(targets != forbidden)
    assert targets.min() >= 0 and targets.max() < 7


def test_draw_targets_excluding_empty_batch():
    from repro.utils.rand import draw_targets_excluding

    targets = draw_targets_excluding(RandomSource(0), 10, np.array([], dtype=int))
    assert targets.size == 0


def test_resample_forbidden_targets_matches_historical_stream():
    """The shared helper must consume the RNG exactly like the inline
    masked-re-draw loop it replaced, so seeded partner draws are unchanged."""
    from repro.utils.rand import resample_forbidden_targets

    n = 64
    a, b = RandomSource(17), RandomSource(17)

    partners = a.integers(0, n, size=n)
    own = np.arange(n)
    mask = partners == own
    while np.any(mask):
        partners[mask] = a.integers(0, n, size=int(mask.sum()))
        mask = partners == own

    helper = b.integers(0, n, size=n)
    resample_forbidden_targets(b, helper, own, n)
    assert np.array_equal(partners, helper)


def test_resample_forbidden_targets_rejects_degenerate_n():
    from repro.utils.rand import resample_forbidden_targets

    with pytest.raises(ValueError):
        resample_forbidden_targets(
            RandomSource(0), np.zeros(3, dtype=int), np.zeros(3, dtype=int), 1
        )


def test_scalar_rejection_pattern_is_gone_from_the_tree():
    """The scalar `while target == node` re-draw pattern must not reappear
    outside the loop-reference token engine (kept verbatim for
    bit-identity)."""
    import pathlib

    src = pathlib.Path(__file__).resolve().parent.parent / "src"
    offenders = []
    for path in src.rglob("*.py"):
        text = path.read_text()
        if "while target ==" in text and path.name != "tokens.py":
            offenders.append(str(path))
    assert not offenders, offenders
