"""Chaos on the live backend: SWIM bounds, conservation, degraded answers.

``repro.faults`` specs are reinterpreted as transport faults here — crash
kills an endpoint, drop loses the frame in flight, delay holds the write.
Every schedule is seeded, so each assertion is a deterministic replay, and
every async run sits under a hard wall-clock ceiling.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.aggregates.push_sum import PushSumProtocol
from repro.exceptions import ConfigurationError
from repro.faults import (
    CrashRestart,
    FaultInjector,
    MessageDelay,
    MessageDrop,
)
from repro.gossip.metrics import NetworkMetrics
from repro.net import (
    ChannelTransport,
    RetryPolicy,
    SwimFailureDetector,
    arun_protocol,
    net_approximate_quantile,
    run_protocol_asyncio,
)

TIMEOUT_S = 60.0

#: Tight deadlines for chaos runs: dead peers fail calls fast instead of
#: spending wall time in full backoff schedules.  The retry policy never
#: feeds the engine stream, so pins are unaffected.
FAST_RETRY = RetryPolicy(timeout_s=0.05, attempts=2, backoff_base_s=0.001)


def run(coro, timeout_s: float = TIMEOUT_S):
    return asyncio.run(asyncio.wait_for(coro, timeout_s))


def _values(n: int, seed: int = 0) -> np.ndarray:
    return np.random.default_rng(seed).normal(size=n)


# -- SWIM failure detection ------------------------------------------------


def _swim_run(kill=(), rounds=12, mode="refuse"):
    """One seeded detector run over a push-sum workload; returns
    (detector, result).  ``kill`` nodes go down before round 0."""
    n = 16
    values = _values(n, seed=3)
    transport = ChannelTransport(n)
    detector = SwimFailureDetector(
        n, rng=5, k_indirect=2, ping_timeout_s=0.02, confirm_after_rounds=2
    )

    async def go():
        for node in kill:
            transport.kill(node, mode=mode)
        try:
            return await arun_protocol(
                PushSumProtocol(values, rounds=rounds),
                rng=6,
                transport=transport,
                retry=FAST_RETRY,
                detector=detector,
            )
        finally:
            await transport.stop()

    return detector, run(go())


def test_swim_suspects_and_confirms_dead_peers():
    detector, result = _swim_run(kill=(3, 7))
    assert result.extra["suspected"] == [3, 7]
    assert result.extra["confirmed_dead"] == [3, 7]
    # Suspicion latency bound: with 14 live probers each probing once per
    # round, a dead peer is probed (and suspected) within the first few
    # rounds of this seeded schedule.
    for node in (3, 7):
        since = detector.suspicion_round(node)
        confirmed = detector.confirmation_round(node)
        assert since is not None and since <= 4
        assert confirmed is not None
        assert confirmed - since + 1 >= detector.confirm_after_rounds
    assert detector.stats.direct_pings > 0


def test_swim_silent_peers_are_caught_by_the_ping_deadline():
    """A hung (silent) process never refuses — only the RPC deadline sees
    it.  Suspicion must still land."""
    detector, result = _swim_run(kill=(5,), mode="silent")
    assert 5 in detector.suspected
    assert 5 in detector.confirmed


def test_swim_zero_false_positives_on_a_healthy_network():
    detector, result = _swim_run(kill=())
    assert detector.suspected == set()
    assert detector.stats.suspicions == 0
    assert result.extra["suspected"] == []


def test_swim_false_positive_rate_bounded_under_drop_and_delay():
    """Drops and delays hit the gossip data plane, not the ping control
    plane: the detector must end the run with no live peer suspected."""
    n = 16
    values = _values(n, seed=4)
    detector = SwimFailureDetector(n, rng=7, ping_timeout_s=0.02)
    faults = FaultInjector(
        [MessageDrop(0.2), MessageDelay(0.2, max_delay=2)], rng=11
    )
    result = run_protocol_asyncio(
        PushSumProtocol(values, rounds=10),
        rng=8,
        faults=faults,
        detector=detector,
        delay_unit_s=0.001,
    )
    assert detector.suspected == set()
    assert detector.stats.false_positives_cleared == 0
    assert result.extra["lost_messages"] > 0


def test_swim_suspicion_piggybacks_on_gossip_pushes():
    """Dissemination rides the data plane: a digest merged from a received
    push marks the suspicion as gossip-delivered."""
    detector = SwimFailureDetector(8, rng=1)
    detector.merge_digest([2, 5], round_index=4)
    assert detector.suspected == {2, 5}
    assert detector.stats.gossip_disseminations == 2
    assert detector.suspects[2].via_gossip is True
    assert detector.digest() == [2, 5]
    # Idempotent: re-merging an already-suspected peer is a no-op.
    detector.merge_digest([2], round_index=5)
    assert detector.stats.gossip_disseminations == 2
    assert detector.suspects[2].since_round == 4


def test_swim_probe_schedule_replays_identically():
    first, _ = _swim_run(kill=(3,))
    second, _ = _swim_run(kill=(3,))
    assert first.stats.events == second.stats.events
    assert first.stats.direct_pings == second.stats.direct_pings
    assert first.stats.indirect_pings == second.stats.indirect_pings


def test_swim_detector_validation():
    with pytest.raises(ConfigurationError):
        SwimFailureDetector(1)
    with pytest.raises(ConfigurationError):
        SwimFailureDetector(4, k_indirect=3)
    with pytest.raises(ConfigurationError):
        SwimFailureDetector(4, ping_timeout_s=0)
    with pytest.raises(ConfigurationError):
        SwimFailureDetector(4, confirm_after_rounds=0)


# -- conservation under chaos ---------------------------------------------


def test_push_sum_mass_is_conserved_under_drop_and_crash():
    """The on_send_failure self-merge (Section-5 "keep your half") keeps
    total push-sum mass exact while frames are lost and peers die."""
    n = 16
    values = _values(n, seed=5)
    protocol = PushSumProtocol(values, rounds=25)
    faults = FaultInjector(
        [
            MessageDrop(0.2),
            CrashRestart(0.02, downtime=10**6, reset_values=False),
        ],
        rng=13,
    )
    result = run_protocol_asyncio(protocol, rng=9, faults=faults)
    assert result.extra["lost_messages"] > 0
    assert len(result.extra["crashed_nodes"]) > 0
    np.testing.assert_allclose(protocol._s.sum(), values.sum(), rtol=1e-12)
    np.testing.assert_allclose(protocol._w.sum(), float(n), rtol=1e-12)


def test_chaos_schedule_replays_bit_for_bit():
    """Same seeds, same chaos: crashed sets, loss counters and metrics
    totals are identical across two whole runs."""

    def once():
        metrics = NetworkMetrics()
        faults = FaultInjector(
            [MessageDrop(0.15), CrashRestart(0.02, downtime=10**6)], rng=17
        )
        protocol = PushSumProtocol(_values(12, seed=6), rounds=15)
        result = run_protocol_asyncio(
            protocol, rng=10, metrics=metrics, faults=faults
        )
        return (
            result.extra["crashed_nodes"],
            result.extra["lost_messages"],
            metrics.summary(),
            protocol.outputs_array().tolist(),
        )

    assert once() == once()


# -- graceful degradation: the PR-8 contract over the network --------------


def test_quantile_completes_with_widened_bounds_under_crash_chaos():
    """The ISSUE-10 acceptance scenario: ≥10% of peers crash mid-query,
    the query still completes, and the answer carries honestly widened
    accuracy that actually covers the achieved rank error."""
    n = 16
    values = _values(n, seed=3)
    faults = FaultInjector(
        [CrashRestart(0.01, downtime=10**9, reset_values=False)], rng=21
    )
    answer = net_approximate_quantile(
        values,
        phi=0.5,
        eps=0.1,
        rng=13,
        transport=ChannelTransport(n),
        faults=faults,
        retry=FAST_RETRY,
    )
    assert answer.degraded is True
    assert len(answer.crashed) >= n // 10
    assert answer.n_live == n - len(answer.crashed)
    assert answer.accuracy == pytest.approx(0.1 + len(answer.crashed) / n)
    assert answer.accuracy < 0.5  # degraded, not meaningless
    # The honest bound holds: the achieved rank sits inside the widened
    # band around phi.
    achieved_rank = float(np.mean(values <= answer.value))
    assert abs(achieved_rank - answer.phi) <= answer.accuracy
    assert answer.bisection_steps > 0
    assert answer.rounds > 0


def test_quantile_fault_free_run_is_not_degraded():
    values = _values(16, seed=3)
    answer = net_approximate_quantile(values, phi=0.5, eps=0.1, rng=13)
    assert answer.degraded is False
    assert answer.crashed == ()
    assert answer.accuracy == pytest.approx(0.1)
    achieved_rank = float(np.mean(values <= answer.value))
    assert abs(achieved_rank - 0.5) <= answer.accuracy


def test_quantile_carries_prewounded_transport_state():
    """A shared transport session keeps its kill state: peers already dead
    before the query widen the answer exactly like mid-query deaths."""
    n = 12
    values = _values(n, seed=8)
    transport = ChannelTransport(n)
    transport.kill(2)
    transport.kill(9)

    async def go():
        try:
            return await anet()
        finally:
            await transport.stop()

    async def anet():
        from repro.net import anet_approximate_quantile

        return await anet_approximate_quantile(
            values, phi=0.5, eps=0.1, rng=4, transport=transport,
            retry=FAST_RETRY,
        )

    answer = run(go())
    assert answer.degraded is True
    assert answer.crashed == (2, 9)
    assert answer.accuracy == pytest.approx(0.1 + 2 / n)


def test_quantile_refuses_without_a_quorum():
    n = 8
    values = _values(n, seed=9)
    transport = ChannelTransport(n)
    for node in range(n - 1):
        transport.kill(node)

    async def go():
        from repro.net import anet_approximate_quantile

        try:
            with pytest.raises(ConfigurationError, match="quorum"):
                await anet_approximate_quantile(
                    values, rng=1, transport=transport, retry=FAST_RETRY
                )
        finally:
            await transport.stop()

    run(go())


def test_quantile_validates_inputs():
    values = _values(8)
    with pytest.raises(ConfigurationError):
        net_approximate_quantile(values, phi=1.5)
    with pytest.raises(ConfigurationError):
        net_approximate_quantile(values, eps=0.0)
    with pytest.raises(ConfigurationError):
        net_approximate_quantile([1.0])
    with pytest.raises(ConfigurationError):
        net_approximate_quantile(values, run_timeout_s=0)
