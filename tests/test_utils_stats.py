"""Tests for repro.utils.stats (rank / quantile conventions)."""

import numpy as np
import pytest

from repro.utils.stats import (
    empirical_quantile,
    fraction_within_eps,
    max_rank_error,
    quantile_of_value,
    rank_error,
    rank_of_value,
    target_rank,
    value_at_rank,
    within_eps,
)


def test_target_rank_is_ceil_phi_n():
    assert target_rank(10, 0.0) == 1
    assert target_rank(10, 0.05) == 1
    assert target_rank(10, 0.5) == 5
    assert target_rank(10, 0.51) == 6
    assert target_rank(10, 1.0) == 10


def test_target_rank_validation():
    with pytest.raises(ValueError):
        target_rank(0, 0.5)
    with pytest.raises(ValueError):
        target_rank(10, 1.5)


def test_value_at_rank_and_empirical_quantile():
    values = [5.0, 1.0, 3.0, 2.0, 4.0]
    assert value_at_rank(values, 1) == 1.0
    assert value_at_rank(values, 5) == 5.0
    assert empirical_quantile(values, 0.5) == 3.0
    assert empirical_quantile(values, 1.0) == 5.0
    with pytest.raises(ValueError):
        value_at_rank(values, 0)
    with pytest.raises(ValueError):
        value_at_rank(values, 6)


def test_rank_and_quantile_of_value():
    values = [10.0, 20.0, 30.0, 40.0]
    assert rank_of_value(values, 25.0) == 2
    assert rank_of_value(values, 5.0) == 0
    assert quantile_of_value(values, 40.0) == 1.0
    assert quantile_of_value(values, 10.0) == 0.25


def test_rank_error_zero_when_estimate_is_exact_quantile():
    values = np.arange(1.0, 101.0)
    estimate = empirical_quantile(values, 0.37)
    assert rank_error(values, estimate, 0.37) == 0.0


def test_rank_error_measures_distance_in_quantile_space():
    values = np.arange(1.0, 101.0)  # value v has quantile v/100
    # value 60 as an estimate of the 0.5-quantile occupies the rank band
    # [0.60, 0.60], so it needs eps >= 0.10 to be acceptable.
    assert rank_error(values, 60.0, 0.5) == pytest.approx(0.10, abs=1e-9)
    # estimates below the target
    assert rank_error(values, 40.0, 0.5) == pytest.approx(0.10, abs=1e-9)


def test_rank_error_with_duplicate_values_uses_the_band():
    values = np.array([1.0, 2.0, 2.0, 2.0, 3.0])
    # value 2 occupies quantiles 2/5..4/5; any phi inside has zero error
    assert rank_error(values, 2.0, 0.5) == 0.0
    assert rank_error(values, 2.0, 0.75) == 0.0
    assert rank_error(values, 2.0, 1.0) > 0.0


def test_within_eps_and_fraction_within_eps():
    values = np.arange(1.0, 101.0)
    assert within_eps(values, 52.0, 0.5, 0.05)
    assert not within_eps(values, 60.0, 0.5, 0.05)
    estimates = np.array([48.0, 50.0, 52.0, 70.0])
    assert fraction_within_eps(values, estimates, 0.5, 0.05) == pytest.approx(0.75)


def test_max_rank_error():
    values = np.arange(1.0, 101.0)
    estimates = np.array([50.0, 55.0])
    assert max_rank_error(values, estimates, 0.5) == pytest.approx(0.05, abs=1e-9)


def test_empty_and_invalid_inputs_raise():
    with pytest.raises(ValueError):
        empirical_quantile([], 0.5)
    with pytest.raises(ValueError):
        rank_error([1.0, 2.0], 1.0, 1.5)
    with pytest.raises(ValueError):
        within_eps([1.0, 2.0], 1.0, 0.5, -0.1)
