"""Tests for the tournament schedules (Lemmas 2.2 and 2.12)."""

import math

import pytest

from repro.core.schedules import (
    approx_round_bound,
    three_tournament_iteration_bound,
    three_tournament_schedule,
    two_tournament_iteration_bound,
    two_tournament_schedule,
)
from repro.exceptions import ConfigurationError


def test_two_tournament_schedule_squares_the_heavy_mass():
    schedule = two_tournament_schedule(phi=0.25, eps=0.1)
    assert schedule.direction == "min"
    assert schedule.h0 == pytest.approx(1.0 - 0.35)
    for iteration in schedule.iterations[:-1]:
        assert iteration.h_after == pytest.approx(iteration.h_before ** 2)
        assert iteration.delta == 1.0


def test_two_tournament_last_iteration_is_truncated():
    schedule = two_tournament_schedule(phi=0.25, eps=0.1)
    last = schedule.iterations[-1]
    assert 0.0 < last.delta <= 1.0
    # The schedule stops exactly when the mass would cross T = 1/2 - eps.
    assert last.h_after <= schedule.threshold + 1e-12
    assert last.h_before > schedule.threshold


def test_two_tournament_symmetric_direction_for_high_phi():
    schedule = two_tournament_schedule(phi=0.8, eps=0.05)
    assert schedule.direction == "max"
    assert schedule.h0 == pytest.approx(0.75)


def test_two_tournament_empty_schedule_near_median():
    schedule = two_tournament_schedule(phi=0.5, eps=0.1)
    # h0 = l0 = 0.4 <= T = 0.4 -> no iterations needed
    assert schedule.num_iterations == 0
    assert schedule.rounds == 0


def test_two_tournament_iteration_count_respects_lemma_2_2():
    for eps in (0.2, 0.1, 0.05, 0.02, 0.01):
        for phi in (0.1, 0.3, 0.5, 0.7, 0.9):
            schedule = two_tournament_schedule(phi, eps)
            bound = math.log(4.0 / eps) / math.log(7.0 / 4.0) + 2
            assert schedule.num_iterations <= math.ceil(bound) + 1
            assert schedule.num_iterations <= two_tournament_iteration_bound(eps) + 1


def test_three_tournament_schedule_applies_median_map():
    schedule = three_tournament_schedule(eps=0.1, n=4096)
    assert schedule.l0 == pytest.approx(0.4)
    for iteration in schedule.iterations:
        expected = 3 * iteration.l_before ** 2 - 2 * iteration.l_before ** 3
        assert iteration.l_after == pytest.approx(expected)
    # final mass is below the threshold n^{-1/3}
    assert schedule.iterations[-1].l_after <= schedule.threshold + 1e-12


def test_three_tournament_iterations_respect_lemma_2_12():
    for eps in (0.2, 0.1, 0.05):
        for n in (256, 4096, 65536):
            schedule = three_tournament_schedule(eps, n)
            assert schedule.num_iterations <= three_tournament_iteration_bound(eps, n) + 1


def test_three_tournament_iterations_grow_with_log_one_over_eps():
    n = 4096
    assert (
        three_tournament_schedule(0.01, n).num_iterations
        > three_tournament_schedule(0.2, n).num_iterations
    )


def test_three_tournament_iterations_grow_slowly_with_n():
    eps = 0.1
    small = three_tournament_schedule(eps, 256).num_iterations
    large = three_tournament_schedule(eps, 1 << 20).num_iterations
    assert large >= small
    assert large - small <= 5  # log log growth only


def test_rounds_property():
    schedule1 = two_tournament_schedule(0.25, 0.1)
    assert schedule1.rounds == 2 * schedule1.num_iterations
    schedule2 = three_tournament_schedule(0.1, 1024)
    assert schedule2.rounds == 3 * schedule2.num_iterations


def test_approx_round_bound_monotone():
    assert approx_round_bound(0.05, 1024) > approx_round_bound(0.2, 1024)
    assert approx_round_bound(0.1, 1 << 20) >= approx_round_bound(0.1, 1 << 10)


def test_validation_errors():
    with pytest.raises(ConfigurationError):
        two_tournament_schedule(1.5, 0.1)
    with pytest.raises(ConfigurationError):
        two_tournament_schedule(0.5, 0.0)
    with pytest.raises(ConfigurationError):
        two_tournament_schedule(0.5, 0.6)
    with pytest.raises(ConfigurationError):
        three_tournament_schedule(0.1, 1)
    with pytest.raises(ConfigurationError):
        three_tournament_iteration_bound(0.7, 100)
    with pytest.raises(ConfigurationError):
        two_tournament_iteration_bound(0.0)
