"""Tests for repro.gossip.failures."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.gossip.failures import (
    NoFailures,
    PerNodeFailures,
    TopologyFailures,
    TopologyProcessFailures,
    UniformFailures,
    resolve_failure_model,
)
from repro.utils.rand import RandomSource


def test_no_failures_never_fails():
    model = NoFailures()
    mask = model.failure_mask(0, 100, RandomSource(1))
    assert mask.dtype == bool
    assert not mask.any()
    assert model.mu == 0.0


def test_uniform_failures_rate_close_to_mu():
    model = UniformFailures(0.3)
    rng = RandomSource(2)
    total = 0
    rounds = 50
    for i in range(rounds):
        total += int(model.failure_mask(i, 1000, rng).sum())
    rate = total / (rounds * 1000)
    assert 0.25 < rate < 0.35
    assert model.expected_failures(1000) == pytest.approx(300.0)


def test_uniform_failures_validation():
    with pytest.raises(ConfigurationError):
        UniformFailures(1.0)
    with pytest.raises(ConfigurationError):
        UniformFailures(-0.1)


def test_per_node_failures_static_vector():
    probs = np.zeros(100)
    probs[:10] = 0.9
    model = PerNodeFailures(probs)
    assert model.mu == pytest.approx(0.9)
    rng = RandomSource(3)
    counts = np.zeros(100)
    for i in range(200):
        counts += model.failure_mask(i, 100, rng)
    # nodes 10.. never fail, nodes 0..9 fail often
    assert counts[10:].sum() == 0
    assert counts[:10].min() > 100


def test_per_node_failures_wrong_length_raises():
    model = PerNodeFailures(np.full(10, 0.2))
    with pytest.raises(ConfigurationError):
        model.failure_mask(0, 20, RandomSource(1))


def test_per_node_failures_callable_schedule():
    def schedule(round_index, n):
        probs = np.zeros(n)
        if round_index % 2 == 0:
            probs[:] = 0.5
        return probs

    model = PerNodeFailures(schedule, mu=0.5)
    rng = RandomSource(4)
    even = model.failure_mask(0, 500, rng).sum()
    odd = model.failure_mask(1, 500, rng).sum()
    assert even > 150
    assert odd == 0


def test_per_node_callable_requires_mu():
    with pytest.raises(ConfigurationError):
        PerNodeFailures(lambda r, n: np.zeros(n))


def test_per_node_schedule_exceeding_mu_raises():
    model = PerNodeFailures(lambda r, n: np.full(n, 0.9), mu=0.5)
    with pytest.raises(ConfigurationError):
        model.failure_mask(0, 10, RandomSource(1))


def test_per_node_invalid_probabilities():
    with pytest.raises(ConfigurationError):
        PerNodeFailures(np.array([0.5, 1.0]))
    with pytest.raises(ConfigurationError):
        PerNodeFailures(np.array([[0.1, 0.2]]))


def test_resolve_failure_model():
    assert isinstance(resolve_failure_model(None), NoFailures)
    assert isinstance(resolve_failure_model(0), NoFailures)
    assert isinstance(resolve_failure_model(0.25), UniformFailures)
    model = UniformFailures(0.1)
    assert resolve_failure_model(model) is model
    with pytest.raises(ConfigurationError):
        resolve_failure_model("half")


# ---- callable-schedule range validation (regression) ------------------------


def test_per_node_callable_out_of_range_names_the_range():
    """A callable returning probs >= 1 must fail with the range error, not a
    misleading mu-bound message — regardless of how large mu is."""
    model = PerNodeFailures(lambda r, n: np.full(n, 1.5), mu=0.9)
    with pytest.raises(ConfigurationError, match=r"\[0, 1\)"):
        model.failure_mask(0, 10, RandomSource(1))


def test_per_node_callable_prob_of_exactly_one_rejected():
    model = PerNodeFailures(lambda r, n: np.full(n, 1.0), mu=0.5)
    with pytest.raises(ConfigurationError, match=r"\[0, 1\)"):
        model.failure_mask(0, 10, RandomSource(1))


def test_per_node_callable_negative_prob_rejected():
    model = PerNodeFailures(lambda r, n: np.full(n, -0.1), mu=0.5)
    with pytest.raises(ConfigurationError, match=r"\[0, 1\)"):
        model.failure_mask(0, 10, RandomSource(1))


def test_per_node_callable_within_mu_still_works():
    model = PerNodeFailures(lambda r, n: np.full(n, 0.4), mu=0.5)
    mask = model.failure_mask(0, 2000, RandomSource(3))
    assert 500 < int(mask.sum()) < 1100


# ---- position-correlated (topology) failures --------------------------------


def _star_degrees(n):
    degrees = np.ones(n, dtype=np.int64)
    degrees[0] = n - 1
    return degrees


def test_topology_failures_degree_mode_hits_hubs_hardest():
    n = 2000
    model = TopologyFailures(_star_degrees(n), mu=0.5, mode="degree")
    counts = np.zeros(n)
    rng = RandomSource(7)
    for r in range(200):
        counts += model.failure_mask(r, n, rng)
    # hub fails at rate mu, leaves at mu/(n-1)
    assert counts[0] > 50
    assert counts[1:].mean() < 1.0


def test_topology_failures_inverse_mode_hits_leaves_hardest():
    n = 2000
    model = TopologyFailures(_star_degrees(n), mu=0.5, mode="inverse-degree")
    counts = np.zeros(n)
    rng = RandomSource(7)
    for r in range(200):
        counts += model.failure_mask(r, n, rng)
    assert counts[0] < 5
    assert counts[1:].mean() > 50


def test_topology_failures_accepts_topology_objects():
    from repro.topology import ring

    model = TopologyFailures(ring(64, k=2), mu=0.3)
    # ring is regular: every node at the full rate mu
    assert np.allclose(model._probabilities(0, 64), 0.3)


def test_topology_failures_validation():
    with pytest.raises(ConfigurationError):
        TopologyFailures(_star_degrees(16), mu=0.2, mode="random")
    with pytest.raises(ConfigurationError):
        TopologyFailures(_star_degrees(16), mu=1.0)
    with pytest.raises(ConfigurationError):
        TopologyFailures(np.zeros(16), mu=0.2)  # isolated nodes


# ---- churn schedules viewed as failure models --------------------------------


def test_topology_process_failures_replays_the_churn_schedule():
    from repro.topology import ChurnProcess

    process = ChurnProcess(n=64, churn_rate=0.3, rng=5)
    model = TopologyProcessFailures(process)
    masks = [model.failure_mask(r, 64, RandomSource(0)).copy() for r in range(20)]

    reference = ChurnProcess(n=64, churn_rate=0.3, rng=5)
    reference.begin()
    expected = [~reference.round_state(r).active for r in range(20)]
    assert all((a == b).all() for a, b in zip(masks, expected))


def test_topology_process_failures_rejects_wrong_n():
    from repro.topology import ChurnProcess

    model = TopologyProcessFailures(ChurnProcess(n=64, churn_rate=0.1, rng=1))
    with pytest.raises(ConfigurationError):
        model.failure_mask(0, 65, RandomSource(0))


def test_topology_process_failures_replays_on_model_reuse():
    """A second run restarting its round counter must replay the schedule,
    not continue it — seeded token-engine results stay reproducible when
    the same model object is reused."""
    from repro.topology import ChurnProcess

    model = TopologyProcessFailures(ChurnProcess(n=64, churn_rate=0.3, rng=5))
    rng = RandomSource(0)
    first = [model.failure_mask(r, 64, rng).copy() for r in range(5)]
    second = [model.failure_mask(r, 64, rng).copy() for r in range(5)]
    assert all((a == b).all() for a, b in zip(first, second))
