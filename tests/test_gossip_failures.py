"""Tests for repro.gossip.failures."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.gossip.failures import (
    NoFailures,
    PerNodeFailures,
    UniformFailures,
    resolve_failure_model,
)
from repro.utils.rand import RandomSource


def test_no_failures_never_fails():
    model = NoFailures()
    mask = model.failure_mask(0, 100, RandomSource(1))
    assert mask.dtype == bool
    assert not mask.any()
    assert model.mu == 0.0


def test_uniform_failures_rate_close_to_mu():
    model = UniformFailures(0.3)
    rng = RandomSource(2)
    total = 0
    rounds = 50
    for i in range(rounds):
        total += int(model.failure_mask(i, 1000, rng).sum())
    rate = total / (rounds * 1000)
    assert 0.25 < rate < 0.35
    assert model.expected_failures(1000) == pytest.approx(300.0)


def test_uniform_failures_validation():
    with pytest.raises(ConfigurationError):
        UniformFailures(1.0)
    with pytest.raises(ConfigurationError):
        UniformFailures(-0.1)


def test_per_node_failures_static_vector():
    probs = np.zeros(100)
    probs[:10] = 0.9
    model = PerNodeFailures(probs)
    assert model.mu == pytest.approx(0.9)
    rng = RandomSource(3)
    counts = np.zeros(100)
    for i in range(200):
        counts += model.failure_mask(i, 100, rng)
    # nodes 10.. never fail, nodes 0..9 fail often
    assert counts[10:].sum() == 0
    assert counts[:10].min() > 100


def test_per_node_failures_wrong_length_raises():
    model = PerNodeFailures(np.full(10, 0.2))
    with pytest.raises(ConfigurationError):
        model.failure_mask(0, 20, RandomSource(1))


def test_per_node_failures_callable_schedule():
    def schedule(round_index, n):
        probs = np.zeros(n)
        if round_index % 2 == 0:
            probs[:] = 0.5
        return probs

    model = PerNodeFailures(schedule, mu=0.5)
    rng = RandomSource(4)
    even = model.failure_mask(0, 500, rng).sum()
    odd = model.failure_mask(1, 500, rng).sum()
    assert even > 150
    assert odd == 0


def test_per_node_callable_requires_mu():
    with pytest.raises(ConfigurationError):
        PerNodeFailures(lambda r, n: np.zeros(n))


def test_per_node_schedule_exceeding_mu_raises():
    model = PerNodeFailures(lambda r, n: np.full(n, 0.9), mu=0.5)
    with pytest.raises(ConfigurationError):
        model.failure_mask(0, 10, RandomSource(1))


def test_per_node_invalid_probabilities():
    with pytest.raises(ConfigurationError):
        PerNodeFailures(np.array([0.5, 1.0]))
    with pytest.raises(ConfigurationError):
        PerNodeFailures(np.array([[0.1, 0.2]]))


def test_resolve_failure_model():
    assert isinstance(resolve_failure_model(None), NoFailures)
    assert isinstance(resolve_failure_model(0), NoFailures)
    assert isinstance(resolve_failure_model(0.25), UniformFailures)
    model = UniformFailures(0.1)
    assert resolve_failure_model(model) is model
    with pytest.raises(ConfigurationError):
        resolve_failure_model("half")
