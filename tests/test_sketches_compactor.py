"""Tests for the Appendix A.1 compactor."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.sketches.compactor import (
    CompactingBuffer,
    compact,
    cumulative_rank_error_bound,
)


def test_compact_keeps_even_positions_of_sorted_order():
    assert compact([5.0, 1.0, 4.0, 2.0, 3.0, 6.0]) == [2.0, 4.0, 6.0]
    assert compact([1.0, 2.0]) == [2.0]
    assert compact([]) == []


def test_buffer_from_samples_compacts_to_capacity():
    buffer = CompactingBuffer.from_samples(np.arange(100.0), capacity=16)
    assert len(buffer) <= 16
    assert buffer.weight >= 4
    assert buffer.represented_samples >= 64


def test_merge_doubles_weight_when_overflowing():
    a = CompactingBuffer.from_samples(np.arange(0.0, 16.0), capacity=16)
    b = CompactingBuffer.from_samples(np.arange(16.0, 32.0), capacity=16)
    assert a.weight == b.weight == 1
    a.merge(b)
    assert len(a) <= 16
    assert a.weight == 2
    assert a.represented_samples == 32


def test_merge_requires_equal_weight_and_capacity():
    a = CompactingBuffer.from_samples(np.arange(32.0), capacity=16)   # weight 2
    b = CompactingBuffer.from_samples(np.arange(8.0), capacity=16)    # weight 1
    with pytest.raises(ConfigurationError):
        a.merge(b)
    c = CompactingBuffer.from_samples(np.arange(8.0), capacity=8)
    with pytest.raises(ConfigurationError):
        b.merge(c)


def test_weighted_rank_error_respects_lemma_a3():
    """One compaction changes any rank by at most the pre-compaction weight."""
    rng = np.random.default_rng(0)
    samples = rng.random(64)
    buffer = CompactingBuffer(capacity=64, items=sorted(samples))
    query = 0.5
    exact_rank = int(np.sum(samples <= query))
    buffer.items = compact(buffer.items)
    buffer.weight *= 2
    assert abs(buffer.weighted_rank(query) - exact_rank) <= 2


def test_query_returns_plausible_quantiles():
    buffer = CompactingBuffer.from_samples(np.arange(1.0, 1025.0), capacity=64)
    mid = buffer.query(0.5)
    assert 400 <= mid <= 624
    assert buffer.query(0.0) <= buffer.query(1.0)
    assert abs(buffer.quantile_of(512.0) - 0.5) < 0.1


def test_message_bits_scale_with_length():
    buffer = CompactingBuffer.from_samples(np.arange(64.0), capacity=32)
    assert buffer.message_bits() <= 16 + 64 * 32 + 32


def test_cumulative_error_bound():
    assert cumulative_rank_error_bound(100, 200) == 0.0
    assert cumulative_rank_error_bound(4096, 64) > 0.0
    with pytest.raises(ConfigurationError):
        cumulative_rank_error_bound(0, 10)


def test_empty_buffer_queries_raise():
    buffer = CompactingBuffer(capacity=8)
    with pytest.raises(ConfigurationError):
        buffer.query(0.5)
    with pytest.raises(ConfigurationError):
        buffer.quantile_of(1.0)


def test_invalid_construction():
    with pytest.raises(ConfigurationError):
        CompactingBuffer(capacity=1)
    with pytest.raises(ConfigurationError):
        CompactingBuffer(capacity=8, weight=0)
