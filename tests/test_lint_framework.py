"""Framework-level tests for :mod:`repro.lint`.

Covers the suppression grammar, module-name resolution, the CLI's exit
code contract, the versioned JSON report schema, and the two whole-tree
gates: the self-lint (``python -m repro.lint src`` must be clean at
HEAD) and the suppression audit (every suppression in the tree carries a
justification and names a known rule).
"""

from __future__ import annotations

import importlib.util
import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.lint import (
    JSON_SCHEMA_VERSION,
    Finding,
    lint_paths,
    render_json,
    render_text,
)
from repro.lint.cli import main
from repro.lint.runner import iter_python_files, module_name_for
from repro.lint.suppressions import extract_suppressions, parse_suppression

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC = REPO_ROOT / "src"
FIXTURES = REPO_ROOT / "tests" / "lint_fixtures" / "repro"


def _lint_env() -> dict:
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = str(SRC) if not existing else str(SRC) + os.pathsep + existing
    return env


# ---------------------------------------------------------------------------
# suppression grammar
# ---------------------------------------------------------------------------


def test_parse_suppression_inline_applies_to_own_line():
    parsed = parse_suppression(
        7, "# repro-lint: disable=stable-sort -- ties impossible here", standalone=False
    )
    assert parsed is not None
    assert parsed.rules == ("stable-sort",)
    assert parsed.applies_to == 7
    assert parsed.justified


def test_parse_suppression_standalone_applies_to_next_line():
    parsed = parse_suppression(
        7, "# repro-lint: disable=thread-kwargs -- threaded via network", standalone=True
    )
    assert parsed is not None
    assert parsed.applies_to == 8


def test_parse_suppression_multiple_rules():
    parsed = parse_suppression(
        1, "# repro-lint: disable=stable-sort, wallclock -- fixture", standalone=False
    )
    assert parsed is not None
    assert parsed.rules == ("stable-sort", "wallclock")


def test_parse_suppression_without_justification_is_unjustified():
    parsed = parse_suppression(1, "# repro-lint: disable=stable-sort", standalone=False)
    assert parsed is not None
    assert not parsed.justified


def test_parse_non_suppression_comment_returns_none():
    assert parse_suppression(1, "# a normal comment", standalone=False) is None


def test_extract_suppressions_skips_comments_inside_strings():
    source = 'TEXT = "# repro-lint: disable=stable-sort -- not a comment"\n'
    assert extract_suppressions(source, source.splitlines()) == []


# ---------------------------------------------------------------------------
# file collection and module naming
# ---------------------------------------------------------------------------


def test_module_name_for_walks_package_chain():
    path = FIXTURES / "core" / "tp_stable_sort.py"
    assert module_name_for(str(path)) == "repro.core.tp_stable_sort"
    assert module_name_for(str(FIXTURES / "core" / "__init__.py")) == "repro.core"


def test_module_name_for_loose_script_is_bare_stem(tmp_path):
    script = tmp_path / "bench_driver.py"
    script.write_text("import numpy as np\n")
    assert module_name_for(str(script)) == "bench_driver"


def test_iter_python_files_deduplicates_and_sorts(tmp_path):
    (tmp_path / "b.py").write_text("")
    (tmp_path / "a.py").write_text("")
    (tmp_path / "notes.txt").write_text("")
    files = iter_python_files([str(tmp_path), str(tmp_path / "a.py")])
    assert files == [str(tmp_path / "a.py"), str(tmp_path / "b.py")]


def test_syntax_error_becomes_a_finding(tmp_path):
    bad = tmp_path / "broken.py"
    bad.write_text("def half(:\n")
    result = lint_paths([str(bad)])
    assert result.exit_code == 1
    assert [finding.rule for finding in result.findings] == ["syntax-error"]


# ---------------------------------------------------------------------------
# CLI exit-code contract
# ---------------------------------------------------------------------------


def test_cli_exit_zero_on_clean_file(capsys):
    code = main([str(FIXTURES / "core" / "nm_stable_sort.py")])
    assert code == 0
    assert "clean:" in capsys.readouterr().out


def test_cli_exit_one_on_findings(capsys):
    code = main([str(FIXTURES / "core" / "tp_stable_sort.py")])
    assert code == 1
    assert "stable-sort" in capsys.readouterr().out


def test_cli_exit_two_without_paths(capsys):
    assert main([]) == 2


def test_cli_exit_two_on_unknown_rule(capsys):
    code = main(["--select", "no-such-rule", str(FIXTURES / "core")])
    assert code == 2


def test_cli_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in ("rng-discipline", "stable-sort", "bare-suppression"):
        assert rule in out


def test_cli_select_restricts_rules(capsys):
    code = main(["--select", "wallclock", str(FIXTURES / "core" / "tp_stable_sort.py")])
    assert code == 0  # stable-sort finding not reported when deselected


def test_cli_show_suppressed(capsys):
    code = main(
        ["--show-suppressed", str(FIXTURES / "core" / "nm_bare_suppression.py")]
    )
    assert code == 0
    assert "[suppressed:" in capsys.readouterr().out


# ---------------------------------------------------------------------------
# reporters
# ---------------------------------------------------------------------------


def test_text_report_line_format():
    result = lint_paths([str(FIXTURES / "core" / "tp_wallclock.py")])
    text = render_text(result)
    first = text.splitlines()[0]
    path, line, col, rule = first.split(":")[:4]
    assert path.endswith("tp_wallclock.py")
    assert int(line) > 0 and int(col) >= 0
    assert rule.strip() == "wallclock"
    assert "found 1 finding(s)" in text


def test_json_report_schema():
    """Satellite: the machine-readable report keeps its versioned shape."""
    result = lint_paths([str(FIXTURES / "core" / "tp_bare_suppression.py")])
    report = json.loads(render_json(result))
    assert report["version"] == JSON_SCHEMA_VERSION
    assert report["tool"] == "repro.lint"
    assert set(report) == {
        "version",
        "tool",
        "files_checked",
        "rules_run",
        "findings",
        "suppressed",
        "summary",
    }
    assert report["files_checked"] == 1
    assert set(report["summary"]) == {"total", "suppressed", "by_rule"}
    assert report["summary"]["total"] == len(report["findings"]) > 0
    for finding in report["findings"]:
        assert {"rule", "path", "line", "col", "message", "suppressed"} <= set(finding)
        assert finding["suppressed"] is False
    # Suppressed findings carry their justification.
    clean = lint_paths([str(FIXTURES / "core" / "nm_bare_suppression.py")])
    report = json.loads(render_json(clean))
    (suppressed,) = report["suppressed"]
    assert suppressed["suppressed"] is True
    assert suppressed["justification"]


def test_cli_format_json_round_trips(tmp_path, capsys):
    code = main(["--format", "json", str(FIXTURES / "core" / "nm_stable_sort.py")])
    assert code == 0
    report = json.loads(capsys.readouterr().out)
    assert report["version"] == JSON_SCHEMA_VERSION
    assert report["summary"]["total"] == 0


def test_finding_to_dict_omits_absent_justification():
    finding = Finding(rule="wallclock", path="x.py", line=1, col=0, message="m")
    assert "justification" not in finding.to_dict()
    assert "justification" in finding.with_suppression("why").to_dict()


# ---------------------------------------------------------------------------
# whole-tree gates
# ---------------------------------------------------------------------------


def test_self_lint_src_is_clean():
    """`python -m repro.lint src` must stay clean at HEAD (the CI gate)."""
    proc = subprocess.run(
        [sys.executable, "-m", "repro.lint", "src"],
        capture_output=True,
        text=True,
        env=_lint_env(),
        cwd=str(REPO_ROOT),
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "clean:" in proc.stdout


def test_suppression_audit_every_disable_is_justified():
    """Satellite: no suppression in src/ hides a finding without a reason."""
    result = lint_paths([str(SRC)], select=["bare-suppression"])
    offenders = [
        f"{finding.path}:{finding.line}: {finding.message}"
        for finding in result.findings
    ]
    assert offenders == []


def test_suppression_audit_inventory():
    """Every suppression names a known rule and actually suppresses something.

    A suppression whose finding disappeared (code rewritten, rule tightened)
    is dead weight that misleadingly documents a violation; the tree-wide
    lint run must account one suppressed finding per suppression comment.
    """
    from repro.lint import known_rule_ids

    known = set(known_rule_ids())
    targets = set()
    for path in iter_python_files([str(SRC)]):
        source = Path(path).read_text(encoding="utf-8")
        for suppression in extract_suppressions(source, source.splitlines()):
            assert suppression.justified, f"{path}:{suppression.line} lacks -- why"
            unknown = set(suppression.rules) - known
            assert not unknown, f"{path}:{suppression.line} names {unknown}"
            targets.add((path, suppression.applies_to))
    result = lint_paths([str(SRC)])
    assert result.findings == []
    # One comment may silence several findings on its line (a call missing
    # more than one tracked kwarg), so compare covered lines, not counts.
    covered = {(finding.path, finding.line) for finding in result.suppressed}
    dead = targets - covered
    assert not dead, f"suppressions that no longer suppress anything: {sorted(dead)}"


# ---------------------------------------------------------------------------
# mypy (strict subset) — runs when mypy is installed, e.g. in CI
# ---------------------------------------------------------------------------


@pytest.mark.skipif(
    importlib.util.find_spec("mypy") is None, reason="mypy not installed"
)
def test_mypy_strict_subset_passes():
    proc = subprocess.run(
        [sys.executable, "-m", "mypy", "--config-file", "mypy.ini"],
        capture_output=True,
        text=True,
        cwd=str(REPO_ROOT),
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
