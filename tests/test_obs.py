"""Tests for repro.obs — tracer, spans, engine hooks, exporters.

The two contracts everything else rests on:

* the null tracer is free (shared singletons, no per-call allocation, no
  per-round engine clock reads), so instrumentation can stay enabled at
  every call site;
* an active tracer only *reads* state — identical seeds give bit-identical
  results with and without tracing, including the pinned single-lane
  streams.
"""

import json

import numpy as np
import pytest

from repro.aggregates.extrema import ExtremaProtocol
from repro.aggregates.push_sum import PushSumProtocol
from repro.core.all_quantiles import estimate_all_ranks
from repro.core.approx_quantile import approximate_quantile
from repro.core.exact_quantile import exact_quantile
from repro.core.service import QuantileService
from repro.gossip.engine import run_protocol_loop, run_protocol_vectorized
from repro.gossip.metrics import NetworkMetrics
from repro.obs import (
    NULL_TRACER,
    LatencyHistogram,
    Tracer,
    get_tracer,
    render_profile,
    render_prometheus,
    set_tracer,
    use_tracer,
    write_trace_jsonl,
)
from repro.utils.rand import RandomSource


def _values(n, seed=3):
    return RandomSource(seed).random(n) * 100.0


# -- the null tracer ----------------------------------------------------------


def test_null_tracer_is_the_ambient_default():
    assert get_tracer() is NULL_TRACER
    assert NULL_TRACER.active is False
    assert NULL_TRACER.on_round is None


def test_null_tracer_hands_out_one_shared_span():
    span_a = NULL_TRACER.span("a", metrics=NetworkMetrics())
    span_b = NULL_TRACER.span("b")
    assert span_a is span_b  # singleton: no allocation per call site
    with span_a as entered:
        assert entered is span_a
        assert entered.annotate(anything=1) is span_a


def test_use_tracer_restores_previous_tracer():
    tracer = Tracer()
    with use_tracer(tracer):
        assert get_tracer() is tracer
        inner = Tracer()
        with use_tracer(inner):
            assert get_tracer() is inner
        assert get_tracer() is tracer
    assert get_tracer() is NULL_TRACER


def test_use_tracer_restores_on_exception():
    with pytest.raises(RuntimeError):
        with use_tracer(Tracer()):
            raise RuntimeError("boom")
    assert get_tracer() is NULL_TRACER


def test_set_tracer_none_installs_null():
    previous = set_tracer(None)
    assert previous is NULL_TRACER
    assert get_tracer() is NULL_TRACER


# -- spans --------------------------------------------------------------------


def test_span_nesting_parent_and_depth():
    tracer = Tracer()
    with tracer.span("root"):
        with tracer.span("child"):
            with tracer.span("grandchild"):
                pass
        with tracer.span("sibling"):
            pass
    root, child, grandchild, sibling = tracer.spans
    assert (root.parent, root.depth) == (None, 0)
    assert (child.parent, child.depth) == (root.index, 1)
    assert (grandchild.parent, grandchild.depth) == (child.index, 2)
    assert (sibling.parent, sibling.depth) == (root.index, 1)
    assert all(span.done for span in tracer.spans)
    assert [s.name for s in tracer.root_spans()] == ["root"]
    assert [s.name for s in tracer.children(root.index)] == [
        "child", "sibling",
    ]


def test_span_captures_metric_deltas():
    tracer = Tracer()
    metrics = NetworkMetrics()
    metrics.charge_rounds(3)  # pre-span counts must not leak into the span
    with tracer.span("window", metrics) as span:
        span.annotate(tag="x")
        metrics.begin_round()
        metrics.record_messages(4, 10)
        metrics.record_failures(2)
        metrics.record_query(64, count=2)
    record = tracer.spans[0]
    assert record.rounds == 1
    assert record.messages == 6        # 4 gossip + 2 query messages
    assert record.bits == 4 * 10 + 2 * 64
    assert record.queries == 2
    assert record.query_bits == 2 * 64
    assert record.failed_node_rounds == 2
    assert record.meta == {"tag": "x"}
    assert record.wall_s >= 0.0


def test_totals_sum_root_spans_only():
    tracer = Tracer()
    metrics = NetworkMetrics()
    with tracer.span("root", metrics):
        with tracer.span("child", metrics):
            metrics.charge_rounds(5)
    totals = tracer.totals()
    assert totals["rounds"] == 5       # not 10: the child is a sub-window
    assert totals["spans"] == 2
    agg = tracer.aggregate()
    assert agg["root"]["rounds"] == 5
    assert agg["child"]["rounds"] == 5


# -- engine hooks -------------------------------------------------------------


ENGINES = [run_protocol_loop, run_protocol_vectorized]


@pytest.mark.parametrize("engine", ENGINES, ids=["loop", "vectorized"])
def test_on_round_hook_fires_once_per_round(engine):
    calls = []
    result = engine(
        PushSumProtocol(_values(64), rounds=20),
        rng=1,
        on_round=lambda record, elapsed: calls.append((record, elapsed)),
    )
    assert len(calls) == result.rounds
    assert [record.round_index for record, _ in calls] == list(
        range(result.rounds)
    )
    assert all(elapsed >= 0.0 for _, elapsed in calls)


def test_hook_counts_agree_across_engines():
    loop_calls, vec_calls = [], []
    loop = run_protocol_loop(
        ExtremaProtocol(_values(64), mode="max"), rng=2,
        on_round=lambda r, e: loop_calls.append(r.round_index),
    )
    vec = run_protocol_vectorized(
        ExtremaProtocol(_values(64), mode="max"), rng=2,
        on_round=lambda r, e: vec_calls.append(r.round_index),
    )
    assert loop.rounds == vec.rounds
    assert loop_calls == vec_calls


@pytest.mark.parametrize("engine", ENGINES, ids=["loop", "vectorized"])
def test_ambient_tracer_hook_observes_engine_rounds(engine):
    tracer = Tracer(round_timeline=True)
    with use_tracer(tracer):
        result = engine(PushSumProtocol(_values(64), rounds=15), rng=4)
    assert tracer.rounds_observed == result.rounds
    assert len(tracer.timeline) == result.rounds
    assert tracer.rounds_per_sec > 0.0
    labels = tracer.round_labels()
    assert sum(agg["rounds"] for agg in labels.values()) == result.rounds


@pytest.mark.parametrize("engine", ENGINES, ids=["loop", "vectorized"])
def test_explicit_hook_wins_over_ambient_tracer(engine):
    tracer = Tracer()
    calls = []
    with use_tracer(tracer):
        result = engine(
            PushSumProtocol(_values(32), rounds=10), rng=4,
            on_round=lambda r, e: calls.append(r),
        )
    assert len(calls) == result.rounds
    assert tracer.rounds_observed == 0


@pytest.mark.parametrize("engine", ENGINES, ids=["loop", "vectorized"])
def test_hook_does_not_perturb_engine_streams(engine):
    baseline = engine(PushSumProtocol(_values(64), rounds=20), rng=9)
    with use_tracer(Tracer()):
        traced = engine(PushSumProtocol(_values(64), rounds=20), rng=9)
    assert traced.outputs == baseline.outputs
    assert traced.rounds == baseline.rounds
    assert traced.metrics.summary() == baseline.metrics.summary()


# -- tracing never perturbs the algorithms ------------------------------------


def test_pinned_streams_survive_an_active_tracer():
    """The PR-4 sha256 stream pins must hold with tracing enabled."""
    from test_engine_equivalence import (
        SINGLE_LANE_PINS,
        _digest,
        _pin_values,
    )
    from repro.core.three_tournament import run_three_tournament
    from repro.core.two_tournament import run_two_tournament
    from repro.gossip.network import GossipNetwork

    with use_tracer(Tracer(round_timeline=True)):
        net = GossipNetwork(_pin_values(), rng=12)
        batch = net.pull(3)
        assert _digest(batch.partners, batch.values, batch.ok) == (
            SINGLE_LANE_PINS["pull_nofail"]
        )
        net = GossipNetwork(_pin_values(), rng=5, keep_history=False)
        two = run_two_tournament(net, phi=0.3, eps=0.1)
        assert _digest(two.final_values) == SINGLE_LANE_PINS["two_tournament"]
        net = GossipNetwork(_pin_values(), rng=6, keep_history=False)
        three = run_three_tournament(net, eps=0.05)
        assert _digest(three.final_values) == (
            SINGLE_LANE_PINS["three_tournament"]
        )
        result = approximate_quantile(_pin_values(), phi=0.35, eps=0.1, rng=7)
        assert _digest(result.estimates) == SINGLE_LANE_PINS["approx"]


def test_traced_exact_quantile_matches_untraced():
    values = _values(4000, seed=8)
    baseline = exact_quantile(values, phi=0.25, rng=13, fidelity="simulated")
    tracer = Tracer(round_timeline=True)
    with use_tracer(tracer):
        traced = exact_quantile(values, phi=0.25, rng=13, fidelity="simulated")
    assert traced.value == baseline.value
    assert traced.rounds == baseline.rounds
    assert traced.metrics.summary() == baseline.metrics.summary()
    # the root span's counter deltas are the whole run
    root = tracer.find_spans("exact_quantile")[0]
    assert root.rounds == traced.rounds
    assert root.meta["iterations"] == traced.iterations
    # the step spans partition the root's rounds exactly
    step_rounds = sum(
        span.rounds for span in tracer.children(root.index)
    )
    assert step_rounds == traced.rounds
    names = {span.name for span in tracer.spans}
    assert {"exact_quantile", "sandwich", "extrema", "counting", "tokens",
            "final_query", "approx_quantile", "two_tournament",
            "three_tournament"} <= names
    assert tracer.rounds_observed > 0  # engine substrates were hooked


def test_traced_all_ranks_matches_untraced_and_spans_cover_rounds():
    values = _values(600, seed=5)
    baseline = estimate_all_ranks(values, eps=0.2, rng=21)
    tracer = Tracer()
    with use_tracer(tracer):
        traced = estimate_all_ranks(values, eps=0.2, rng=21)
    assert np.array_equal(
        traced.quantile_estimates, baseline.quantile_estimates
    )
    assert traced.rounds == baseline.rounds
    root = tracer.find_spans("all_ranks")[0]
    assert root.rounds == traced.rounds
    chunks = tracer.find_spans("grid_chunk")
    assert len(chunks) == traced.chunks
    assert sum(span.rounds for span in chunks) == traced.rounds


# -- service instrumentation --------------------------------------------------


def test_service_latency_histogram_and_answer_sources():
    values = _values(256, seed=6)
    service = QuantileService(values, eps=0.1, rng=3, sketch_k=64)
    service.quantile(0.5, prefer="grid")       # forced grid bracket
    service.quantile(0.5, prefer="sketch")     # forced sketch
    service.rank_of(float(values[0]))          # grid
    assert service.answers_grid == 2
    assert service.answers_sketch == 1
    assert service.query_latency.count == service.queries_answered == 3
    summary = service.summary()
    assert summary["answers_grid"] == 2
    assert summary["answers_sketch"] == 1
    latency = service.query_latency.summary()
    assert latency["count"] == 3
    assert latency["max_s"] > 0.0
    # quantiles report bucket upper bounds, so only compare them to each other
    assert 0.0 < latency["p50_s"] <= latency["p99_s"]


def test_service_build_span_records_build_rounds():
    tracer = Tracer()
    with use_tracer(tracer):
        service = QuantileService(_values(256, seed=6), eps=0.2, rng=3,
                                  sketch_k=32)
    build = tracer.find_spans("service_build")[0]
    assert build.rounds == service.rounds
    assert tracer.find_spans("sketch_build")
    # query-time instrumentation is span-free (histogram only)
    spans_before = len(tracer.spans)
    with use_tracer(tracer):
        service.quantile(0.4)
    assert len(tracer.spans) == spans_before


# -- the latency histogram ----------------------------------------------------


def test_latency_histogram_buckets_and_quantiles():
    hist = LatencyHistogram()
    assert hist.summary() == {
        "count": 0, "mean_s": 0.0, "p50_s": 0.0, "p99_s": 0.0, "max_s": 0.0,
    }
    for seconds in (2e-6, 2e-6, 5e-6, 1e-3):
        hist.observe(seconds)
    assert hist.count == 4
    assert hist.min_s == 2e-6
    assert hist.max_s == 1e-3
    assert hist.quantile(0.5) <= hist.quantile(0.99)
    with pytest.raises(ValueError):
        hist.observe(-1.0)
    with pytest.raises(ValueError):
        hist.quantile(1.5)


def test_latency_histogram_overflow_bucket():
    hist = LatencyHistogram()
    hist.observe(100.0)  # beyond the ~4 s top bound
    assert hist.overflow == 1
    assert hist.count == 1


# -- exporters ----------------------------------------------------------------


@pytest.fixture
def small_trace():
    tracer = Tracer(round_timeline=True)
    with use_tracer(tracer):
        approximate_quantile(_values(128, seed=2), phi=0.5, eps=0.2, rng=1)
        # the tournaments drive GossipNetwork pulls directly; run one
        # engine-backed protocol so the round timeline has samples too
        run_protocol_loop(PushSumProtocol(_values(32), rounds=5), rng=1)
    return tracer


def test_jsonl_roundtrip(tmp_path, small_trace):
    path = tmp_path / "trace.jsonl"
    lines = write_trace_jsonl(small_trace, path)
    parsed = [json.loads(line) for line in path.read_text().splitlines()]
    assert len(parsed) == lines
    types = {line["type"] for line in parsed}
    assert types == {"span", "event", "round", "summary"}
    spans = [line for line in parsed if line["type"] == "span"]
    assert len(spans) == len(small_trace.spans)
    assert all(span["done"] for span in spans)
    summary = parsed[-1]
    assert summary["type"] == "summary"
    assert summary["totals"]["rounds"] == small_trace.totals()["rounds"]
    rounds = [line for line in parsed if line["type"] == "round"]
    assert len(rounds) == small_trace.rounds_observed


def test_render_profile_contains_span_tree(small_trace):
    text = render_profile(small_trace)
    assert "approx_quantile" in text
    assert "two_tournament" in text
    assert "three_tournament" in text
    assert "total" in text
    shallow = render_profile(small_trace, max_depth=0)
    assert "two_tournament" not in shallow


def test_render_prometheus_families(small_trace):
    hist = LatencyHistogram()
    hist.observe(3e-6)
    metrics = NetworkMetrics()
    metrics.record_query(96)
    text = render_prometheus(
        tracer=small_trace,
        metrics={"serve": metrics},
        histograms={"query_latency": hist},
    )
    assert "# TYPE repro_rounds_total counter" in text
    assert 'repro_span_rounds{span="approx_quantile"}' in text
    assert "repro_engine_rounds_per_sec" in text
    assert 'repro_metrics_queries{instance="serve"} 1' in text
    assert "# TYPE repro_query_latency_seconds histogram" in text
    assert 'repro_query_latency_seconds_bucket{le="+Inf"} 1' in text
    assert "repro_query_latency_seconds_count 1" in text
