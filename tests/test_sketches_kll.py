"""Tests for the simplified KLL sketch."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.sketches.kll import KLLSketch
from repro.utils.rand import RandomSource


def test_small_streams_are_exact():
    sketch = KLLSketch(k=64)
    data = list(range(1, 33))
    sketch.extend(map(float, data))
    assert sketch.count == 32
    assert sketch.size == 32
    assert sketch.query(0.5) == 16.0
    assert sketch.rank(16.0) == 16.0


def test_large_stream_rank_error_is_bounded():
    rng = np.random.default_rng(1)
    data = rng.random(20_000)
    sketch = KLLSketch(k=128, rng=RandomSource(2))
    sketch.extend(data)
    assert sketch.count == 20_000
    assert sketch.size < 1_000  # sub-linear space
    for phi in (0.1, 0.5, 0.9):
        estimate = sketch.query(phi)
        true_quantile = float(np.mean(data <= estimate))
        assert abs(true_quantile - phi) < 0.05


def test_merge_preserves_counts_and_accuracy():
    rng = np.random.default_rng(3)
    a = KLLSketch(k=128, rng=RandomSource(4))
    b = KLLSketch(k=128, rng=RandomSource(5))
    data_a = rng.random(5_000)
    data_b = rng.random(5_000) + 0.5
    a.extend(data_a)
    b.extend(data_b)
    a.merge(b)
    assert a.count == 10_000
    combined = np.concatenate([data_a, data_b])
    estimate = a.query(0.5)
    assert abs(float(np.mean(combined <= estimate)) - 0.5) < 0.07


def test_merge_requires_same_k():
    with pytest.raises(ConfigurationError):
        KLLSketch(k=32).merge(KLLSketch(k=64))


def test_message_bits_track_size():
    sketch = KLLSketch(k=64)
    sketch.extend(float(i) for i in range(1000))
    assert sketch.message_bits() >= 64 * sketch.size


def test_error_bound_scales_with_count_over_k():
    sketch = KLLSketch(k=64)
    assert sketch.error_bound() == 0.0
    sketch.extend(float(i) for i in range(640))
    assert sketch.error_bound() == pytest.approx(30.0)


def test_empty_sketch_queries_raise():
    sketch = KLLSketch()
    with pytest.raises(ConfigurationError):
        sketch.query(0.5)
    with pytest.raises(ConfigurationError):
        sketch.rank(1.0)
    with pytest.raises(ConfigurationError):
        sketch.quantile_of(1.0)


def test_invalid_parameters():
    with pytest.raises(ConfigurationError):
        KLLSketch(k=2)
    with pytest.raises(ConfigurationError):
        KLLSketch(c=0.4)
    with pytest.raises(ConfigurationError):
        KLLSketch().query(1.5)
