"""Tests for the Section-5 failure-tolerant algorithms (Theorem 1.4)."""

import numpy as np
import pytest

from repro.core.robust import default_pulls_per_iteration, robust_approximate_quantile
from repro.exceptions import ConfigurationError
from repro.gossip.failures import PerNodeFailures
from repro.utils.stats import rank_error


def test_default_pulls_grow_with_mu():
    assert default_pulls_per_iteration(0.0) == 4
    assert default_pulls_per_iteration(0.5) > default_pulls_per_iteration(0.2)
    assert default_pulls_per_iteration(0.9) > default_pulls_per_iteration(0.5)
    with pytest.raises(ConfigurationError):
        default_pulls_per_iteration(1.0)


def test_accurate_under_moderate_failures(medium_values):
    phi, eps, mu = 0.5, 0.1, 0.3
    result = robust_approximate_quantile(
        medium_values, phi=phi, eps=eps, failure_model=mu, rng=1
    )
    assert rank_error(medium_values, result.estimate, phi) <= eps
    assert result.good_fraction > 0.5
    assert result.answered_fraction > 0.9


def test_accurate_under_heavy_failures(medium_values):
    phi, eps, mu = 0.75, 0.15, 0.5
    result = robust_approximate_quantile(
        medium_values, phi=phi, eps=eps, failure_model=mu, rng=2
    )
    assert rank_error(medium_values, result.estimate, phi) <= eps
    # most answering nodes should individually be within eps
    finite = result.estimates[np.isfinite(result.estimates)]
    errors = [rank_error(medium_values, float(v), phi) for v in finite]
    assert np.mean(np.asarray(errors) <= eps) > 0.8


def test_rounds_increase_with_mu(medium_values):
    light = robust_approximate_quantile(
        medium_values, phi=0.5, eps=0.1, failure_model=0.1, rng=3
    )
    heavy = robust_approximate_quantile(
        medium_values, phi=0.5, eps=0.1, failure_model=0.6, rng=3
    )
    assert heavy.rounds > light.rounds
    assert heavy.pulls_per_iteration > light.pulls_per_iteration


def test_per_node_failure_model(medium_values):
    probs = np.zeros(medium_values.size)
    probs[: medium_values.size // 2] = 0.4
    model = PerNodeFailures(probs)
    result = robust_approximate_quantile(
        medium_values, phi=0.5, eps=0.1, failure_model=model, rng=4
    )
    assert rank_error(medium_values, result.estimate, 0.5) <= 0.1


def test_no_failures_degenerates_gracefully(medium_values):
    result = robust_approximate_quantile(
        medium_values, phi=0.25, eps=0.1, failure_model=0.0, rng=5
    )
    assert result.good_fraction == 1.0
    assert result.answered_fraction == 1.0
    assert rank_error(medium_values, result.estimate, 0.25) <= 0.1


def test_extra_spread_rounds_increase_coverage(medium_values):
    few = robust_approximate_quantile(
        medium_values, phi=0.5, eps=0.1, failure_model=0.6, rng=6,
        extra_spread_rounds=0,
    )
    many = robust_approximate_quantile(
        medium_values, phi=0.5, eps=0.1, failure_model=0.6, rng=6,
        extra_spread_rounds=20,
    )
    assert many.answered_fraction >= few.answered_fraction


def test_summary_keys(medium_values):
    result = robust_approximate_quantile(
        medium_values, phi=0.5, eps=0.1, failure_model=0.2, rng=7
    )
    summary = result.summary()
    assert summary["n"] == medium_values.size
    assert 0.0 <= summary["good_fraction"] <= 1.0


def test_validation_errors(medium_values):
    with pytest.raises(ConfigurationError):
        robust_approximate_quantile(medium_values, phi=2.0, eps=0.1, failure_model=0.1)
    with pytest.raises(ConfigurationError):
        robust_approximate_quantile(medium_values, phi=0.5, eps=0.0, failure_model=0.1)
    with pytest.raises(ConfigurationError):
        robust_approximate_quantile(
            medium_values, phi=0.5, eps=0.1, failure_model=0.1, pulls_per_iteration=2
        )
    with pytest.raises(ConfigurationError):
        robust_approximate_quantile(
            medium_values, phi=0.5, eps=0.1, failure_model=0.1, final_samples=4
        )
