"""Tests for the weighted rank-query buffer."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.sketches.weighted_buffer import WeightedBuffer


def test_add_and_total_weight():
    buffer = WeightedBuffer()
    buffer.add(1.0, 2.0)
    buffer.add(3.0)
    assert len(buffer) == 2
    assert buffer.total_weight == 3.0


def test_rank_and_quantile_of():
    buffer = WeightedBuffer.from_pairs([(1.0, 1.0), (2.0, 2.0), (3.0, 1.0)])
    assert buffer.rank(0.5) == 0.0
    assert buffer.rank(2.0) == 3.0
    assert buffer.quantile_of(2.0) == pytest.approx(0.75)


def test_query_inverse_of_rank():
    buffer = WeightedBuffer.from_pairs([(float(v), 1.0) for v in range(1, 101)])
    assert buffer.query(0.5) == 50.0
    assert buffer.query(0.0) == 1.0
    assert buffer.query(1.0) == 100.0


def test_query_respects_weights():
    buffer = WeightedBuffer.from_pairs([(1.0, 99.0), (2.0, 1.0)])
    assert buffer.query(0.5) == 1.0
    assert buffer.query(1.0) == 2.0


def test_extend_and_as_arrays():
    a = WeightedBuffer.from_pairs([(2.0, 1.0)])
    b = WeightedBuffer.from_pairs([(1.0, 1.0)])
    a.extend(b)
    values, weights = a.as_arrays()
    assert values.tolist() == [1.0, 2.0]
    assert weights.tolist() == [1.0, 1.0]


def test_empty_buffer_behaviour():
    buffer = WeightedBuffer()
    values, weights = buffer.as_arrays()
    assert values.size == 0 and weights.size == 0
    with pytest.raises(ConfigurationError):
        buffer.query(0.5)
    with pytest.raises(ConfigurationError):
        buffer.quantile_of(1.0)


def test_invalid_weight():
    buffer = WeightedBuffer()
    with pytest.raises(ConfigurationError):
        buffer.add(1.0, 0.0)
    with pytest.raises(ConfigurationError):
        buffer.query(1.5)
