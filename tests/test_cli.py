"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import main


def test_no_command_prints_help_and_fails(capsys):
    assert main([]) == 1
    assert "usage" in capsys.readouterr().out.lower()


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "exact-rounds" in out
    assert "Theorem 1.2" in out


def test_experiment_command_with_small_parameters(capsys):
    assert main(["schedules", "--sizes", "256", "--seed", "3"]) == 0
    out = capsys.readouterr().out
    assert "phase1_iterations" in out


def test_experiment_csv_output(capsys):
    assert main(["tokens", "--sizes", "128", "--trials", "1", "--output", "csv"]) == 0
    out = capsys.readouterr().out
    assert out.startswith("n,")


def test_query_approximate(tmp_path, capsys):
    values = np.arange(1.0, 513.0)
    path = tmp_path / "values.txt"
    np.savetxt(path, values)
    assert main(["query", "--input", str(path), "--phi", "0.5", "--eps", "0.1", "--seed", "1"]) == 0
    out = capsys.readouterr().out
    assert "approximate 0.5-quantile" in out


def test_query_exact(tmp_path, capsys):
    values = np.arange(1.0, 257.0)
    path = tmp_path / "values.txt"
    np.savetxt(path, values)
    assert main(["query", "--input", str(path), "--phi", "0.25", "--seed", "2"]) == 0
    out = capsys.readouterr().out
    assert "exact 0.25-quantile = 64.0" in out


def test_topology_experiment_command(capsys):
    assert main([
        "topology", "--sizes", "256", "--trials", "1", "--seed", "5",
        "--topology", "complete", "regular", "--degree", "6",
    ]) == 0
    out = capsys.readouterr().out
    assert "spectral_gap" in out
    assert "regular" in out


def test_query_approximate_on_topology(tmp_path, capsys):
    values = np.arange(1.0, 513.0)
    path = tmp_path / "values.txt"
    np.savetxt(path, values)
    assert main([
        "query", "--input", str(path), "--phi", "0.5", "--eps", "0.1",
        "--seed", "1", "--topology", "small-world", "--degree", "8",
        "--rewire-p", "0.2",
    ]) == 0
    out = capsys.readouterr().out
    assert "on small-world" in out


def test_query_exact_rejects_topology(tmp_path):
    values = np.arange(1.0, 257.0)
    path = tmp_path / "values.txt"
    np.savetxt(path, values)
    with pytest.raises(SystemExit):
        main(["query", "--input", str(path), "--phi", "0.5",
              "--topology", "ring"])


def test_unknown_command_errors():
    with pytest.raises(SystemExit):
        main(["frobnicate"])
