"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import main
from repro.exceptions import ConfigurationError


def test_no_command_prints_help_and_fails(capsys):
    assert main([]) == 1
    assert "usage" in capsys.readouterr().out.lower()


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "exact-rounds" in out
    assert "Theorem 1.2" in out


def test_experiment_command_with_small_parameters(capsys):
    assert main(["schedules", "--sizes", "256", "--seed", "3"]) == 0
    out = capsys.readouterr().out
    assert "phase1_iterations" in out


def test_experiment_csv_output(capsys):
    assert main(["tokens", "--sizes", "128", "--trials", "1", "--output", "csv"]) == 0
    out = capsys.readouterr().out
    assert out.startswith("n,")


def test_query_approximate(tmp_path, capsys):
    values = np.arange(1.0, 513.0)
    path = tmp_path / "values.txt"
    np.savetxt(path, values)
    assert main(["query", "--input", str(path), "--phi", "0.5", "--eps", "0.1", "--seed", "1"]) == 0
    out = capsys.readouterr().out
    assert "approximate 0.5-quantile" in out


def test_query_exact(tmp_path, capsys):
    values = np.arange(1.0, 257.0)
    path = tmp_path / "values.txt"
    np.savetxt(path, values)
    assert main(["query", "--input", str(path), "--phi", "0.25", "--seed", "2"]) == 0
    out = capsys.readouterr().out
    assert "exact 0.25-quantile = 64.0" in out


def test_topology_experiment_command(capsys):
    assert main([
        "topology", "--sizes", "256", "--trials", "1", "--seed", "5",
        "--topology", "complete", "regular", "--degree", "6",
    ]) == 0
    out = capsys.readouterr().out
    assert "spectral_gap" in out
    assert "regular" in out


def test_query_approximate_on_topology(tmp_path, capsys):
    values = np.arange(1.0, 513.0)
    path = tmp_path / "values.txt"
    np.savetxt(path, values)
    assert main([
        "query", "--input", str(path), "--phi", "0.5", "--eps", "0.1",
        "--seed", "1", "--topology", "small-world", "--degree", "8",
        "--rewire-p", "0.2",
    ]) == 0
    out = capsys.readouterr().out
    assert "on small-world" in out


def test_query_exact_with_topology(tmp_path, capsys):
    # regression: `query --topology <t>` without --eps used to be rejected;
    # the exact driver now threads the topology into its approximate stages.
    values = np.arange(1.0, 257.0)
    path = tmp_path / "values.txt"
    np.savetxt(path, values)
    main(["query", "--input", str(path), "--phi", "0.5",
          "--topology", "regular", "--degree", "8", "--seed", "3"])
    out = capsys.readouterr().out
    assert "exact 0.5-quantile = 128.0" in out
    assert "on regular" in out


def test_unknown_command_errors():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


def test_churn_experiment_command(capsys):
    assert main([
        "churn", "--sizes", "128", "--trials", "1", "--seed", "5",
        "--topology", "complete", "--churn-rate", "0.1",
        "--resample-every", "4", "--engine", "vectorized",
    ]) == 0
    out = capsys.readouterr().out
    assert "churn_rate" in out
    assert "newscast" in out
    assert "mass_rel_error" in out


def test_churn_experiment_with_topology_failures(capsys):
    assert main([
        "churn", "--sizes", "128", "--trials", "1", "--seed", "5",
        "--topology", "small-world", "--churn-rate", "0.05",
        "--failures", "topology",
    ]) == 0
    assert "topology" in capsys.readouterr().out


# ---- rejection of silently-ignored topology hyper-parameters ----------------


def test_experiment_rejects_rewire_p_on_non_small_world():
    with pytest.raises(ConfigurationError, match="--rewire-p"):
        main([
            "topology", "--sizes", "128", "--trials", "1",
            "--topology", "ring", "--rewire-p", "0.2",
        ])


def test_experiment_rejects_degree_on_fixed_structure_topologies():
    with pytest.raises(ConfigurationError, match="--degree"):
        main([
            "topology", "--sizes", "128", "--trials", "1",
            "--topology", "complete", "--degree", "8",
        ])


def test_experiment_accepts_flag_used_by_any_listed_topology(capsys):
    # complete ignores degree but regular uses it: a mixed list is fine
    assert main([
        "topology", "--sizes", "128", "--trials", "1", "--seed", "5",
        "--topology", "complete", "regular", "--degree", "6",
    ]) == 0


def test_query_rejects_degree_without_topology(tmp_path):
    values = np.arange(1.0, 257.0)
    path = tmp_path / "values.txt"
    np.savetxt(path, values)
    with pytest.raises(ConfigurationError, match="--degree"):
        main(["query", "--input", str(path), "--phi", "0.5", "--eps", "0.1",
              "--degree", "8"])


def test_query_rejects_rewire_p_on_mismatched_topology(tmp_path):
    values = np.arange(1.0, 257.0)
    path = tmp_path / "values.txt"
    np.savetxt(path, values)
    with pytest.raises(ConfigurationError, match="--rewire-p"):
        main(["query", "--input", str(path), "--phi", "0.5", "--eps", "0.1",
              "--topology", "ring", "--rewire-p", "0.2"])


def test_churn_accepts_degree_with_any_topology(capsys):
    # --degree doubles as the newscast view size in the churn experiment,
    # so it is meaningful even when the base family ignores it
    assert main([
        "churn", "--sizes", "64", "--trials", "1", "--seed", "2",
        "--topology", "complete", "--degree", "4",
        "--churn-rate", "0.1", "--resample-every", "2",
    ]) == 0
    assert "newscast" in capsys.readouterr().out


def test_query_exact_with_float32_dtype(tmp_path, capsys):
    values = np.arange(1.0, 513.0)
    path = tmp_path / "values.txt"
    np.savetxt(path, values)
    assert main([
        "query", "--input", str(path), "--phi", "0.5", "--seed", "2",
        "--fidelity", "simulated", "--dtype", "float32",
    ]) == 0
    out = capsys.readouterr().out
    assert "exact 0.5-quantile = 256.0" in out


def test_query_approximate_with_float32_dtype(tmp_path, capsys):
    values = np.arange(1.0, 513.0)
    path = tmp_path / "values.txt"
    np.savetxt(path, values)
    assert main([
        "query", "--input", str(path), "--phi", "0.5", "--eps", "0.1",
        "--seed", "1", "--dtype", "float32",
    ]) == 0
    assert "approximate 0.5-quantile" in capsys.readouterr().out


def test_exact_scale_experiment_accepts_dtype_axis(capsys):
    assert main([
        "exact-scale", "--sizes", "512", "--trials", "1", "--seed", "4",
        "--dtype", "float64", "float32",
    ]) == 0
    out = capsys.readouterr().out
    assert "f32_parity" in out
    assert "float32" in out


def test_experiment_without_dtype_axis_rejects_dtype():
    with pytest.raises(ConfigurationError):
        main(["schedules", "--sizes", "256", "--dtype", "float32"])


def test_ranks_command(tmp_path, capsys):
    values = np.arange(1.0, 257.0)
    path = tmp_path / "values.txt"
    np.savetxt(path, values)
    assert main(["ranks", "--input", str(path), "--eps", "0.2", "--seed", "4"]) == 0
    out = capsys.readouterr().out
    assert "self-rank estimates for n=256" in out
    assert "4 grid targets in 1 fused tournament run(s)" in out
    assert "error mean=" in out


def test_ranks_sequential_mode_runs_one_pass_per_target(tmp_path, capsys):
    values = np.arange(1.0, 257.0)
    path = tmp_path / "values.txt"
    np.savetxt(path, values)
    assert main(["ranks", "--input", str(path), "--eps", "0.2", "--seed", "4",
                 "--sequential"]) == 0
    out = capsys.readouterr().out
    assert "4 grid targets in 4 sequential tournament run(s)" in out


def test_ranks_on_topology_with_dtype_and_engine(tmp_path, capsys):
    values = np.arange(1.0, 257.0)
    path = tmp_path / "values.txt"
    np.savetxt(path, values)
    assert main(["ranks", "--input", str(path), "--eps", "0.2", "--seed", "4",
                 "--topology", "small-world", "--degree", "8",
                 "--rewire-p", "0.2", "--dtype", "float32",
                 "--engine", "vectorized"]) == 0
    out = capsys.readouterr().out
    assert "on small-world" in out


def test_ranks_rejects_degree_without_topology(tmp_path):
    values = np.arange(1.0, 257.0)
    path = tmp_path / "values.txt"
    np.savetxt(path, values)
    with pytest.raises(ConfigurationError, match="--degree"):
        main(["ranks", "--input", str(path), "--eps", "0.2", "--degree", "8"])


def test_serve_command_answers_queries(tmp_path, capsys):
    values = np.arange(1.0, 257.0)
    path = tmp_path / "values.txt"
    np.savetxt(path, values)
    assert main(["serve", "--input", str(path), "--eps", "0.1", "--seed", "4",
                 "--phi", "0.25", "0.5", "0.9"]) == 0
    out = capsys.readouterr().out
    assert "phi=0.25 ->" in out
    assert "phi=0.5 ->" in out
    assert "phi=0.9 ->" in out
    assert "served 3 queries" in out
    assert "zero additional rounds" in out


def test_serve_command_with_sketch(tmp_path, capsys):
    values = np.arange(1.0, 257.0)
    path = tmp_path / "values.txt"
    np.savetxt(path, values)
    assert main(["serve", "--input", str(path), "--eps", "0.25", "--seed", "4",
                 "--phi", "0.37", "--sketch-k", "200"]) == 0
    out = capsys.readouterr().out
    assert "(sketch, rank accuracy" in out


def test_serve_rejects_rewire_p_on_mismatched_topology(tmp_path):
    values = np.arange(1.0, 257.0)
    path = tmp_path / "values.txt"
    np.savetxt(path, values)
    with pytest.raises(ConfigurationError, match="--rewire-p"):
        main(["serve", "--input", str(path), "--phi", "0.5",
              "--topology", "ring", "--rewire-p", "0.2"])


# ---- observability flags ----------------------------------------------------


def _write_values(tmp_path, n=257):
    import numpy as np

    path = tmp_path / "values.txt"
    np.savetxt(path, np.arange(1.0, float(n)))
    return path


def test_query_trace_writes_jsonl(tmp_path, capsys):
    import json

    path = _write_values(tmp_path)
    trace = tmp_path / "trace.jsonl"
    assert main(["query", "--input", str(path), "--phi", "0.5", "--eps",
                 "0.1", "--seed", "1", "--trace", str(trace)]) == 0
    lines = [json.loads(line) for line in trace.read_text().splitlines()]
    assert lines, "trace file is empty"
    spans = [line for line in lines if line["type"] == "span"]
    assert {"approx_quantile", "two_tournament"} <= {
        span["name"] for span in spans
    }
    assert lines[-1]["type"] == "summary"


def test_query_profile_prints_span_tree(tmp_path, capsys):
    path = _write_values(tmp_path)
    assert main(["query", "--input", str(path), "--phi", "0.25", "--seed",
                 "2", "--profile"]) == 0
    out = capsys.readouterr().out
    assert "exact 0.25-quantile = 64.0" in out  # result is unchanged
    assert "exact_quantile" in out
    assert "sandwich" in out
    assert "final_query" in out


def test_query_tracing_does_not_change_the_answer(tmp_path, capsys):
    path = _write_values(tmp_path)
    assert main(["query", "--input", str(path), "--phi", "0.25",
                 "--seed", "2"]) == 0
    baseline = capsys.readouterr().out.splitlines()[0]
    assert main(["query", "--input", str(path), "--phi", "0.25", "--seed",
                 "2", "--profile"]) == 0
    traced = capsys.readouterr().out.splitlines()[0]
    assert traced == baseline


def test_serve_prom_exports_query_latency(tmp_path, capsys):
    path = _write_values(tmp_path)
    prom = tmp_path / "metrics.prom"
    assert main(["serve", "--input", str(path), "--eps", "0.1", "--seed",
                 "4", "--phi", "0.25", "0.5", "--prom", str(prom)]) == 0
    text = prom.read_text()
    assert "# TYPE repro_query_latency_seconds histogram" in text
    assert "repro_query_latency_seconds_count 2" in text
    assert 'repro_metrics_queries{instance="service_queries"} 2' in text
    assert 'repro_span_rounds{span="service_build"}' in text


def test_experiment_trace_flag(tmp_path, capsys):
    import json

    trace = tmp_path / "trace.jsonl"
    assert main(["schedules", "--sizes", "256", "--seed", "3",
                 "--trace", str(trace)]) == 0
    lines = [json.loads(line) for line in trace.read_text().splitlines()]
    assert lines[-1]["type"] == "summary"


def test_ranks_profile_flag(tmp_path, capsys):
    path = _write_values(tmp_path)
    assert main(["ranks", "--input", str(path), "--eps", "0.2", "--seed",
                 "4", "--profile"]) == 0
    out = capsys.readouterr().out
    assert "all_ranks" in out
    assert "grid_chunk" in out
