"""QuantileService lifecycle: churn staleness, degraded answers, epochs."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.service import QuantileService
from repro.exceptions import ConfigurationError
from repro.faults import (
    CrashRestart,
    FaultInjector,
    MessageDrop,
    ValueCorruption,
)
from repro.topology import ChurnProcess
from repro.utils.rand import RandomSource

seeds = st.integers(min_value=0, max_value=2_000)

EPS = 0.15


def _service(n=96, seed=7, churn_rate=0.03, faults=None, **kwargs):
    values = RandomSource(seed).random(n) * 100.0
    churn = (
        ChurnProcess(n, churn_rate=churn_rate, rng=seed + 1)
        if churn_rate is not None else None
    )
    service = QuantileService(
        values, eps=EPS, rng=seed, max_lanes=4,
        churn_process=churn, faults=faults, **kwargs
    )
    return service, values, churn


def _shift_band(service, values, churn, seed, lo=0.4, hi=0.6, scale=2.0):
    """Move one quantile band of the active values far upward: a genuine
    distribution shift (uniform churn alone preserves ranks in
    expectation, so it barely moves lane drift by design)."""
    active = (
        churn.active if churn is not None
        else np.ones(values.size, dtype=bool)
    )
    low, high = np.quantile(values[active], [lo, hi])
    band = np.flatnonzero(active & (values >= low) & (values < high))
    top = float(values[active].max())
    rng = RandomSource(seed + 2)
    for index in band:
        new_value = top * scale + float(rng.random())
        values[index] = new_value
        service.update_value(int(index), new_value)
    return band


# ------------------------------------------------------------ plumbing


def test_ctor_validates_churn_process():
    values = RandomSource(0).random(32)
    with pytest.raises(ConfigurationError):
        QuantileService(values, churn_process="nope")
    with pytest.raises(ConfigurationError):
        QuantileService(
            values, churn_process=ChurnProcess(64, churn_rate=0.1, rng=0)
        )


def test_attach_faults_validates_and_replaces():
    service, _, _ = _service(n=48, churn_rate=None)
    with pytest.raises(ConfigurationError):
        service.attach_faults("nope")
    injector = FaultInjector(MessageDrop(0.1), rng=0)
    service.attach_faults(injector)
    assert service.faults is injector
    service.attach_faults(None)
    assert service.faults is None


def test_lifecycle_plumbing_alone_leaves_answers_untouched():
    """Attaching a churn process (without stepping it) must not perturb
    the build: the seeded gossip stream is byte-identical."""
    plain, _, _ = _service(n=64, churn_rate=None)
    wired, _, _ = _service(n=64, churn_rate=0.05)
    assert np.array_equal(plain.grid_answers, wired.grid_answers)
    assert wired.epoch == 0
    assert not wired.degraded
    assert wired.summary()["stale_lanes"] == 0


def test_fresh_service_answers_are_not_degraded():
    service, _, _ = _service(n=64)
    answer = service.quantile(0.5)
    assert not answer.degraded
    assert answer.epoch == 0
    # grid-bracket accuracy = query accuracy + bracket width; the fresh
    # bound is at least the fault-free query accuracy, with no widening
    assert answer.accuracy >= service._query_accuracy


# ---------------------------------------------- degradation properties


@settings(max_examples=12, deadline=None)
@given(seed=seeds, rounds=st.integers(min_value=1, max_value=40))
def test_degraded_answers_never_tighter_than_fault_free_bound(seed, rounds):
    """However stale the service gets, an answer's advertised accuracy is
    never tighter than the fault-free bound — and strictly wider once the
    degraded flag is set."""
    service, values, churn = _service(seed=seed, churn_rate=0.05)
    probes = (0.1, 0.5, 0.9)
    fresh = {phi: service.quantile(phi).accuracy for phi in probes}
    service.advance_churn(rounds)
    _shift_band(service, values, churn, seed)
    for phi in probes:
        answer = service.quantile(phi)
        assert answer.accuracy >= fresh[phi] - 1e-12
        if answer.degraded:
            assert answer.accuracy > fresh[phi]
        assert np.isfinite(answer.value)


@settings(max_examples=10, deadline=None)
@given(seed=seeds)
def test_service_never_crashes_under_chaos(seed):
    """Churn + every fault kind at once: every query gets an answer —
    degraded or refined, never an exception."""
    injector = FaultInjector(
        [MessageDrop(0.3), CrashRestart(0.1, downtime=2),
         ValueCorruption(0.3, magnitude=2.0)],
        rng=seed,
    )
    service, values, churn = _service(
        seed=seed, churn_rate=0.08, faults=injector
    )
    service.advance_churn(20)
    _shift_band(service, values, churn, seed)
    service.maybe_rebuild()
    for phi in np.linspace(0.05, 0.95, 7):
        answer = service.quantile(float(phi))
        assert np.isfinite(answer.accuracy)
        assert answer.accuracy >= service._query_accuracy - 1e-12
    assert service.summary()["queries_answered"] >= 7


@settings(max_examples=8, deadline=None)
@given(seed=seeds)
def test_validated_rebuild_restores_fresh_answers(seed):
    """An epoch rebuild that passes validation clears the degraded state:
    the next answers carry the new epoch and the fault-free accuracy."""
    service, values, churn = _service(seed=seed, churn_rate=0.04)
    fresh_accuracy = service.quantile(0.5).accuracy
    service.advance_churn(15)
    _shift_band(service, values, churn, seed)
    report = service.rebuild(incremental=True)
    if report.validated:  # fault-free rebuilds validate w.h.p.
        assert service.epoch == report.epoch == 1
        assert not service.degraded
        answer = service.quantile(0.5)
        assert not answer.degraded
        assert answer.epoch == 1
        assert answer.accuracy == pytest.approx(fresh_accuracy)


# -------------------------------------------------- deterministic paths


def test_shift_degrades_then_rebuild_restores():
    service, values, churn = _service(seed=3, churn_rate=0.03)
    baseline = service.quantile(0.9).accuracy
    service.advance_churn(20)
    band = _shift_band(service, values, churn, seed=3)
    assert band.size > 0
    assert service.degraded
    stale_before = service.stale_lanes()
    assert stale_before.size > 0
    degraded_answer = service.quantile(0.9)
    assert degraded_answer.degraded
    assert degraded_answer.accuracy > baseline

    report = service.rebuild(incremental=True)
    assert report.validated
    assert report.mode == "incremental"
    assert service.epoch == 1
    assert not service.degraded
    assert service.stale_lanes().size == 0
    fresh = service.quantile(0.9)
    assert not fresh.degraded
    assert fresh.epoch == 1
    assert fresh.accuracy == pytest.approx(baseline)
    assert service.summary()["rebuilds"] == 1
    # the pre-churn probe was fresh; only the mid-shift one was degraded
    assert service.summary()["answers_degraded"] == 1


def test_incremental_rebuild_runs_strictly_fewer_chunks():
    """A shift confined to the upper half of the distribution leaves the
    low lanes fresh, so the incremental rebuild re-runs strictly fewer
    chunks than the full grid."""
    incr_service, incr_values, incr_churn = _service(seed=5, churn_rate=0.02)
    full_service, full_values, full_churn = _service(seed=5, churn_rate=0.02)
    for service, values, churn in (
        (incr_service, incr_values, incr_churn),
        (full_service, full_values, full_churn),
    ):
        service.advance_churn(10)
        _shift_band(service, values, churn, seed=5, lo=0.55, hi=0.75)

    incremental = incr_service.rebuild(incremental=True)
    full = full_service.rebuild(incremental=False)
    assert full.chunks_run == full.full_chunks * full.attempts
    assert incremental.chunks_run / incremental.attempts < full.full_chunks
    assert incremental.lanes_rebuilt < full.lanes_rebuilt


def test_rebuild_with_no_stale_lanes_is_a_free_epoch_commit():
    service, _, _ = _service(seed=9, churn_rate=0.02)
    rounds_before = service.gossip_metrics.rounds
    report = service.rebuild(incremental=True)
    assert report.chunks_run == 0
    assert report.rounds == 0
    assert service.epoch == 1
    assert service.gossip_metrics.rounds == rounds_before


def test_failed_rebuild_backs_off_and_keeps_serving_degraded():
    """Overwhelming corruption makes validation fail: the rebuild retries
    with exponential backoff (visible as charged rounds), marks the lanes
    suspect, and the service keeps answering — degraded, not crashed."""
    service, values, churn = _service(
        seed=13, churn_rate=0.03,
        faults=None,
        max_rebuild_retries=2, rebuild_backoff=4,
    )
    service.advance_churn(15)
    _shift_band(service, values, churn, seed=13)
    # drop everything: every rebuild lane answers NaN, so validation
    # fails deterministically on every attempt
    service.attach_faults(FaultInjector(MessageDrop(1.0), rng=1))
    rounds_before = service.gossip_metrics.rounds
    report = service.rebuild(incremental=True)
    assert not report.validated
    assert report.attempts == 2
    assert report.backoff_rounds == 4  # 4 * 2**0; the final attempt fails
    assert service.gossip_metrics.rounds > rounds_before
    assert service.degraded
    # probe above the shifted band: that lane's rank moved by the whole
    # band mass, so it is stale, failed its rebuild, and stays degraded
    answer = service.quantile(0.9)
    assert answer.degraded
    assert np.isfinite(answer.value)
    # epoch did not advance — the baseline stays the last good epoch
    assert service.epoch == 0


def test_seeded_lifecycle_replays_bit_for_bit():
    """Same seeds, fresh constructions: the whole chaotic lifecycle —
    build, churn, shift, faulted rebuild — replays identically."""
    def run():
        injector = FaultInjector(
            [MessageDrop(0.15), ValueCorruption(0.2)], rng=23
        )
        service, values, churn = _service(
            seed=17, churn_rate=0.05, faults=injector
        )
        service.advance_churn(12)
        _shift_band(service, values, churn, seed=17)
        report = service.rebuild(incremental=True)
        answers = [service.quantile(phi).value for phi in (0.25, 0.5, 0.75)]
        return (
            service.grid_answers.copy(), answers, report.rounds,
            dict(injector.counters), service.epoch,
        )

    first = run()
    second = run()
    assert np.array_equal(first[0], second[0])
    assert first[1:] == second[1:]


def test_sketch_staleness_widens_accuracy_across_epochs():
    """Departures fold into the sketch bound at the epoch commit: a KLL
    sketch has no deletions, so departed values stay in forever and the
    advertised accuracy must widen to stay honest."""
    service, values, churn = _service(seed=19, churn_rate=0.08, sketch_k=64)
    base = service.sketch_accuracy()
    service.advance_churn(25)
    band = _shift_band(service, values, churn, seed=19)
    count_before = service.sketch.count
    report = service.rebuild(incremental=True)
    assert report.validated
    assert int(np.sum(~churn.active)) > 0
    assert service.sketch_accuracy() > base
    # pending updates were folded into the sketch at the epoch commit
    assert service.sketch.count == count_before + band.size


def test_auto_rebuild_fires_from_advance_churn():
    service, values, churn = _service(
        seed=29, churn_rate=0.05, auto_rebuild=True
    )
    service.advance_churn(10)
    # update_value also checks the trigger under auto_rebuild, so the
    # rebuild may fire mid-shift — either way an epoch must have advanced
    # by the next churn step.
    _shift_band(service, values, churn, seed=29)
    service.advance_churn(1)
    assert service.epoch >= 1
    assert service.summary()["rebuilds"] >= 1
