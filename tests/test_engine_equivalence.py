"""Engine-equivalence suite: the vectorized engine must be bit-identical
to the per-node reference loop for every batch-capable protocol.

For each protocol, both engines run from identical seeds across a grid of
network sizes and failure rates; outputs, round counts, message counts,
bit totals and the full per-round metric history must match exactly — not
approximately.  This is the contract that lets the rest of the library
dispatch to the vectorized path blindly.
"""

import numpy as np
import pytest

from repro.aggregates.broadcast import BroadcastProtocol
from repro.aggregates.counting import count_leq
from repro.aggregates.extrema import ExtremaProtocol, spread_extrema
from repro.aggregates.push_sum import PushSumProtocol, push_sum_average, push_sum_sum
from repro.exceptions import ProtocolError
from repro.gossip.engine import (
    run_protocol,
    run_protocol_loop,
    run_protocol_vectorized,
    supports_batch,
)
from repro.gossip.protocol import BatchAction, BatchGossipProtocol
from repro.topology import random_regular, ring, watts_strogatz
from repro.utils.rand import RandomSource


def _values(n, seed):
    return RandomSource(seed).random(n) * 100.0


def make_push_sum(n, seed):
    return PushSumProtocol(_values(n, seed), rounds=25)


def make_push_sum_weighted(n, seed):
    weights = np.zeros(n)
    weights[0] = 1.0
    return PushSumProtocol(_values(n, seed), weights=weights, rounds=25)


def make_extrema_max(n, seed):
    return ExtremaProtocol(_values(n, seed), mode="max")


def make_extrema_min(n, seed):
    return ExtremaProtocol(_values(n, seed), mode="min")


def make_broadcast(n, seed):
    return BroadcastProtocol(n, source=seed % n)


FACTORIES = [
    make_push_sum,
    make_push_sum_weighted,
    make_extrema_max,
    make_extrema_min,
    make_broadcast,
]

GRID = [
    (n, mu, seed)
    for n in (16, 64, 257)
    for mu in (0.0, 0.3)
    for seed in (0, 11)
]


def _run_both(factory, n, mu, seed, topology_factory=None, peer_sampling="uniform"):
    failure = mu if mu > 0 else None
    kwargs = {}
    if topology_factory is not None:
        kwargs["peer_sampling"] = peer_sampling
    loop = run_protocol_loop(
        factory(n, seed), rng=seed, failure_model=failure, raise_on_budget=False,
        topology=topology_factory(n) if topology_factory else None, **kwargs
    )
    vec = run_protocol_vectorized(
        factory(n, seed), rng=seed, failure_model=failure, raise_on_budget=False,
        topology=topology_factory(n) if topology_factory else None, **kwargs
    )
    return loop, vec


def _assert_identical(loop, vec):
    assert loop.outputs == vec.outputs  # exact, not approximate
    assert loop.rounds == vec.rounds
    assert loop.completed == vec.completed
    assert loop.metrics.summary() == vec.metrics.summary()
    assert len(loop.metrics.history) == len(vec.metrics.history)
    for a, b in zip(loop.metrics.history, vec.metrics.history):
        assert (a.round_index, a.label) == (b.round_index, b.label)
        assert a.messages == b.messages
        assert a.bits == b.bits
        assert a.max_message_bits == b.max_message_bits
        assert a.failed_nodes == b.failed_nodes


@pytest.mark.parametrize("factory", FACTORIES, ids=lambda f: f.__name__)
@pytest.mark.parametrize("n,mu,seed", GRID)
def test_loop_and_vectorized_engines_are_bit_identical(factory, n, mu, seed):
    loop, vec = _run_both(factory, n, mu, seed)
    _assert_identical(loop, vec)


TOPOLOGY_FACTORIES = [
    lambda n: ring(n, k=2),
    lambda n: random_regular(n, 6, rng=n),
    lambda n: watts_strogatz(n, 6, 0.2, rng=n),
]


@pytest.mark.parametrize("factory", FACTORIES, ids=lambda f: f.__name__)
@pytest.mark.parametrize(
    "topology_factory", TOPOLOGY_FACTORIES, ids=["ring", "regular", "small-world"]
)
@pytest.mark.parametrize("peer_sampling", ["uniform", "round-robin"])
def test_engines_bit_identical_on_sparse_topologies(
    factory, topology_factory, peer_sampling
):
    """The equivalence contract holds on every topology, not just complete."""
    loop, vec = _run_both(
        factory, 96, 0.25, 7,
        topology_factory=topology_factory, peer_sampling=peer_sampling,
    )
    _assert_identical(loop, vec)


@pytest.mark.parametrize("mu", [0.0, 0.4])
def test_count_leq_identical_across_engines(mu):
    values = _values(80, seed=5)
    failure = mu if mu > 0 else None
    a = count_leq(values, threshold=50.0, rng=3, failure_model=failure, engine="loop")
    b = count_leq(
        values, threshold=50.0, rng=3, failure_model=failure, engine="vectorized"
    )
    assert np.array_equal(a.estimates, b.estimates)
    assert a.count == b.count
    assert a.exact == b.exact
    assert a.rounds == b.rounds
    assert a.metrics.summary() == b.metrics.summary()


def test_wrapper_functions_identical_across_engines():
    values = _values(60, seed=8)
    for fn, kwargs in [
        (push_sum_average, {}),
        (push_sum_sum, {}),
        (spread_extrema, {"mode": "min"}),
    ]:
        a = fn(values, rng=4, engine="loop", **kwargs)
        b = fn(values, rng=4, engine="vectorized", **kwargs)
        first = a.estimates if hasattr(a, "estimates") else a.values
        second = b.estimates if hasattr(b, "estimates") else b.values
        assert np.array_equal(first, second)
        assert a.rounds == b.rounds
        assert a.metrics.summary() == b.metrics.summary()


def test_auto_dispatch_selects_vectorized_for_batch_protocols():
    protocol = make_push_sum(32, seed=1)
    assert supports_batch(protocol)
    auto = run_protocol(make_push_sum(32, seed=1), rng=2, engine="auto")
    vec = run_protocol_vectorized(make_push_sum(32, seed=1), rng=2)
    assert auto.outputs == vec.outputs
    assert auto.metrics.summary() == vec.metrics.summary()


def test_vectorized_engine_rejects_loop_only_protocols():
    class LoopOnly(PushSumProtocol):
        """A protocol that never implemented the batch API."""

        supports_batch = False

    protocol = LoopOnly(_values(16, seed=4), rounds=3)
    assert not supports_batch(protocol)
    with pytest.raises(ProtocolError):
        run_protocol_vectorized(protocol, rng=0)
    # auto dispatch falls back to the loop engine without error
    result = run_protocol(LoopOnly(_values(16, seed=4), rounds=3), rng=0,
                          engine="auto", raise_on_budget=False)
    assert result.rounds > 0


def test_opting_out_of_batch_support_falls_back_to_loop():
    class OptedOut(PushSumProtocol):
        supports_batch = False

    protocol = OptedOut(_values(16, seed=2), rounds=5)
    assert not supports_batch(protocol)
    with pytest.raises(ProtocolError):
        run_protocol_vectorized(protocol, rng=1)


def test_batch_action_validation():
    with pytest.raises(ValueError):
        BatchAction("teleport", push_bits=1)
    with pytest.raises(ValueError):
        BatchAction("push")  # push_bits missing
    with pytest.raises(ValueError):
        BatchAction("pushpull", push_bits=10)  # pull_bits missing
    action = BatchAction("pushpull", push_bits=10, pull_bits=12)
    assert (action.push_bits, action.pull_bits) == (10, 12)


def test_malformed_act_batch_raises_protocol_error():
    class Broken(PushSumProtocol):
        def act_batch(self, round_index, alive):
            return "not a batch action"

    with pytest.raises(ProtocolError):
        run_protocol_vectorized(Broken(_values(8, seed=3), rounds=3), rng=1)


# ---- single-lane (L = 1) stream pins ----------------------------------------
#
# sha256 prefixes of seeded single-lane GossipNetwork / tournament /
# approximate-quantile runs, captured on the pre-multi-lane tree (PR 4).
# The multi-lane pull surface, the batched round accounting, the
# no-failure fast paths and the sort-free median selection must all leave
# the default L = 1 float64 streams bit-for-bit unchanged.

def _digest(*arrays):
    import hashlib

    digest = hashlib.sha256()
    for array in arrays:
        digest.update(np.ascontiguousarray(array).tobytes())
    return digest.hexdigest()[:16]


def _pin_values():
    return RandomSource(33).random(257) * 100.0


SINGLE_LANE_PINS = {
    "pull_nofail": "6103f313a9ed90fb",
    "pull_fail": "8391e438e169129c",
    "two_tournament": "2d6c2f3cef779455",
    "three_tournament": "ee662e3d13add2d8",
    "approx": "b5967131d573f010",
    "approx_fail": "45a282331a888ed4",
}


def test_single_lane_pull_stream_pinned_to_pre_multilane_tree():
    from repro.gossip.network import GossipNetwork

    net = GossipNetwork(_pin_values(), rng=12)
    batch = net.pull(3)
    assert _digest(batch.partners, batch.values, batch.ok) == (
        SINGLE_LANE_PINS["pull_nofail"]
    )

    net = GossipNetwork(_pin_values(), rng=12, failure_model=0.3)
    batch = net.pull(4)
    assert _digest(batch.partners, batch.values, batch.ok) == (
        SINGLE_LANE_PINS["pull_fail"]
    )
    # the batched accounting reproduces the per-round records exactly
    assert net.metrics.summary() == {
        "rounds": 4,
        "messages": 717,
        "total_bits": 63813,
        "max_message_bits": 89,
        "failed_node_rounds": 311,
        "queries": 0,
        "query_bits": 0,
    }


def test_single_lane_tournament_streams_pinned_to_pre_multilane_tree():
    from repro.core.three_tournament import run_three_tournament
    from repro.core.two_tournament import run_two_tournament
    from repro.gossip.network import GossipNetwork

    net = GossipNetwork(_pin_values(), rng=5, keep_history=False)
    two = run_two_tournament(net, phi=0.3, eps=0.1)
    assert (_digest(two.final_values), two.rounds) == (
        SINGLE_LANE_PINS["two_tournament"], 2
    )

    net = GossipNetwork(_pin_values(), rng=6, keep_history=False)
    three = run_three_tournament(net, eps=0.05)
    assert (_digest(three.final_values), three.rounds) == (
        SINGLE_LANE_PINS["three_tournament"], 33
    )


def test_single_lane_approximate_quantile_pinned_to_pre_multilane_tree():
    from repro.core.approx_quantile import approximate_quantile

    result = approximate_quantile(_pin_values(), phi=0.35, eps=0.1, rng=7)
    assert _digest(result.estimates) == SINGLE_LANE_PINS["approx"]
    assert result.rounds == 38
    assert result.estimate == 32.56950035748125

    failed = approximate_quantile(
        _pin_values(), phi=0.35, eps=0.1, rng=7, failure_model=0.25
    )
    assert _digest(failed.estimates) == SINGLE_LANE_PINS["approx_fail"]
    assert failed.rounds == 38


# ---- one-pass all-quantiles (PR 6) ------------------------------------------

#: Sequential self-rank grid digests captured on the PR 5 tree, before the
#: fused rewrite: digest(quantile_estimates, grid_values) plus total rounds.
ALL_RANKS_SEQUENTIAL_PINS = {
    # estimate_all_ranks(_pin_values(), eps=0.2, rng=9, fused=False)
    "eps_0.2_rng_9": ("59043aafe49dd809", 156),
    # estimate_all_ranks(_pin_values(), eps=0.1, rng=10, query_accuracy=0.08,
    #                    fused=False)
    "eps_0.1_rng_10_qa_0.08": ("79d60d7bcca8279b", 381),
}


def test_sequential_all_ranks_pinned_to_pre_fusion_tree():
    """The fused=False reference path must keep consuming the per-target
    child streams exactly as the PR 5 single-lane loop did."""
    from repro.core.all_quantiles import estimate_all_ranks

    result = estimate_all_ranks(_pin_values(), eps=0.2, rng=9, fused=False)
    assert (
        _digest(result.quantile_estimates, result.grid_values),
        result.rounds,
    ) == ALL_RANKS_SEQUENTIAL_PINS["eps_0.2_rng_9"]

    result = estimate_all_ranks(
        _pin_values(), eps=0.1, rng=10, query_accuracy=0.08, fused=False
    )
    assert (
        _digest(result.quantile_estimates, result.grid_values),
        result.rounds,
    ) == ALL_RANKS_SEQUENTIAL_PINS["eps_0.1_rng_10_qa_0.08"]


def test_fused_single_lane_float64_bit_identical_to_sequential_pin():
    """L = 1 lane chunks drive the very same GossipNetwork streams, so the
    fused path at max_lanes=1 must land on the sequential pin bit-for-bit."""
    from repro.core.all_quantiles import estimate_all_ranks

    result = estimate_all_ranks(
        _pin_values(), eps=0.2, rng=9, fused=True, max_lanes=1
    )
    assert result.grid_values.dtype == np.float64
    assert (
        _digest(result.quantile_estimates, result.grid_values),
        result.rounds,
    ) == ALL_RANKS_SEQUENTIAL_PINS["eps_0.2_rng_9"]


@pytest.mark.parametrize("n", [256, 4096])
def test_fused_and_sequential_grids_agree_within_tolerance(n):
    """Fused lanes share one partner stream, so estimates differ from the
    sequential reference only by in-tolerance tournament noise — and the
    fused round count is max-of-lanes, never more than the sequential sum."""
    from repro.core.all_quantiles import (
        estimate_all_ranks,
        true_self_quantiles,
    )

    values = RandomSource(100 + n).random(n) * 1000.0
    eps = 0.1
    truth = true_self_quantiles(values)
    fused = estimate_all_ranks(values, eps=eps, rng=41)
    sequential = estimate_all_ranks(values, eps=eps, rng=41, fused=False)

    for result in (fused, sequential):
        errors = np.abs(result.quantile_estimates - truth)
        assert float(np.mean(errors <= 2 * eps)) > 0.95
        assert float(errors.mean()) < eps
    # both execution modes agree with each other within the combined bound
    gap = np.abs(fused.quantile_estimates - sequential.quantile_estimates)
    assert float(np.mean(gap <= 2 * eps)) > 0.95
    # rounds: max-of-lanes <= sum-over-grid, strictly so for a 9-wide grid
    assert fused.rounds <= sequential.rounds
    assert fused.rounds < sequential.rounds


@pytest.mark.parametrize("factory", [make_push_sum, make_extrema_max],
                         ids=lambda f: f.__name__)
def test_engines_bit_identical_under_composed_robustness_inputs(factory):
    """failures | topology_process | faults compose by OR on both engines.

    Each of the three robustness inputs draws from its own stream (engine
    stream, process stream, injector stream), so composing all three keeps
    loop and vectorized execution bit-identical — the strongest form of
    the composition contract documented on run_protocol.
    """
    from repro.faults import CrashRestart, FaultInjector, MessageDrop
    from repro.topology import ChurnProcess

    n, seed = 96, 13

    def robustness_kwargs():
        return {
            "failure_model": 0.05,
            "topology_process": ChurnProcess(n, churn_rate=0.05, rng=seed + 1),
            "faults": FaultInjector(
                [MessageDrop(0.1), CrashRestart(0.05, downtime=2)],
                rng=seed + 2,
            ),
        }

    loop = run_protocol_loop(
        factory(n, seed), rng=seed, raise_on_budget=False,
        **robustness_kwargs(),
    )
    vec = run_protocol_vectorized(
        factory(n, seed), rng=seed, raise_on_budget=False,
        **robustness_kwargs(),
    )
    _assert_identical(loop, vec)


def test_faults_do_not_shift_engine_stream():
    """Attaching an injector must not perturb the engine's own draws: a
    run whose injector never fires is bit-identical to a fault-free run."""
    from repro.faults import FaultInjector, MessageDrop

    n, seed = 64, 3
    clean = run_protocol_vectorized(
        make_push_sum(n, seed), rng=seed, raise_on_budget=False,
    )
    quiet = run_protocol_vectorized(
        make_push_sum(n, seed), rng=seed, raise_on_budget=False,
        faults=FaultInjector(MessageDrop(0.0), rng=99),
    )
    assert clean.outputs == quiet.outputs
    assert clean.metrics.summary() == quiet.metrics.summary()
