"""Transport and RPC layer: frames, kill modes, deadlines, retry replay.

Every async test runs under a hard ``asyncio.wait_for`` ceiling so a
wedged transport can fail the test but never hang the suite.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.net import (
    ChannelTransport,
    PeerUnreachable,
    RetryPolicy,
    RpcClient,
    RpcError,
    RpcTimeout,
    TcpTransport,
)

TIMEOUT_S = 20.0


def run(coro, timeout_s: float = TIMEOUT_S):
    return asyncio.run(asyncio.wait_for(coro, timeout_s))


async def _echo(dst, frame):
    return {"echo": frame["x"], "served_by": dst}


def _register_all(transport, handler=_echo):
    for node in range(transport.n):
        transport.register(node, handler)


# -- round trips -----------------------------------------------------------


@pytest.mark.parametrize("cls", [ChannelTransport, TcpTransport])
def test_roundtrip(cls):
    async def go():
        transport = cls(4)
        _register_all(transport)
        await transport.start()
        try:
            reply = await transport.call(0, 3, {"x": 42})
            assert reply == {"echo": 42, "served_by": 3}
            # Latency was recorded via the loop clock.
            assert len(transport.latencies_s) == 1
            assert transport.latencies_s[0] >= 0.0
            assert transport.calls == 1
        finally:
            await transport.stop()

    run(go())


def test_tcp_concurrent_pairs_and_payload_fidelity():
    """Many pairs in flight at once over real sockets; tuples survive the
    pickle framing bit-for-bit."""

    async def go():
        transport = TcpTransport(6)
        _register_all(transport)
        await transport.start()
        try:
            replies = await asyncio.gather(
                *(
                    transport.call(src, (src + 1) % 6, {"x": (src, src / 7.0)})
                    for src in range(6)
                )
            )
            for src, reply in enumerate(replies):
                assert reply["echo"] == (src, src / 7.0)
        finally:
            await transport.stop()

    run(go())


def test_transport_validates_nodes():
    with pytest.raises(ValueError):
        ChannelTransport(1)
    transport = ChannelTransport(3)
    with pytest.raises(ValueError):
        transport.register(3, _echo)
    with pytest.raises(ValueError):
        transport.kill(-1)


# -- kill / revive ---------------------------------------------------------


@pytest.mark.parametrize("cls", [ChannelTransport, TcpTransport])
def test_kill_refuse_then_revive(cls):
    async def go():
        transport = cls(3)
        _register_all(transport)
        await transport.start()
        try:
            transport.kill(1, mode="refuse")
            assert transport.is_down(1)
            assert transport.down == {1}
            with pytest.raises(PeerUnreachable):
                await transport.call(0, 1, {"x": 1})
            assert transport.refused >= 1
            transport.revive(1)
            reply = await transport.call(0, 1, {"x": 2})
            assert reply["echo"] == 2
        finally:
            await transport.stop()

    run(go())


def test_kill_silent_hangs_until_caller_deadline():
    """A "silent" kill models a hung process: the frame is swallowed and
    only the caller's own deadline notices — the SWIM timeout path."""

    async def go():
        transport = ChannelTransport(3)
        _register_all(transport)
        await transport.start()
        try:
            transport.kill(2, mode="silent")
            with pytest.raises(asyncio.TimeoutError):
                await asyncio.wait_for(transport.call(0, 2, {"x": 1}), 0.05)
        finally:
            await transport.stop()

    run(go())


def test_kill_rejects_unknown_mode():
    transport = ChannelTransport(2)
    with pytest.raises(ValueError):
        transport.kill(0, mode="explode")


# -- retry policy ----------------------------------------------------------


def test_retry_policy_schedule_is_stateless_and_replayable():
    policy = RetryPolicy(attempts=4, backoff_base_s=0.01, entropy=7)
    first = policy.schedule(node=3, seq=11)
    again = policy.schedule(node=3, seq=11)
    assert first == again
    assert len(first) == 3
    twin = RetryPolicy(attempts=4, backoff_base_s=0.01, entropy=7)
    assert twin.schedule(3, 11) == first
    # Different identity, different jitter; same exponential envelope.
    other = policy.schedule(node=4, seq=11)
    assert other != first
    for attempt, delay in enumerate(first):
        base = 0.01 * 2.0**attempt
        assert base <= delay <= base * 1.5


def test_retry_policy_schedule_pinned_values():
    """The replay contract, pinned to exact floats: the jitter derives from
    SeedSequence([entropy, node, seq, attempt]) and nothing else."""
    policy = RetryPolicy(attempts=3, backoff_base_s=0.01, entropy=0)
    schedule = policy.schedule(node=0, seq=0)
    expected = tuple(
        0.01
        * 2.0**attempt
        * (
            1.0
            + 0.5
            * float(
                np.random.default_rng(
                    np.random.SeedSequence([0, 0, 0, attempt])
                ).random()
            )
        )
        for attempt in range(2)
    )
    assert schedule == expected


def test_retry_policy_zero_jitter_is_pure_exponential():
    policy = RetryPolicy(attempts=4, backoff_base_s=0.02, jitter=0.0)
    assert policy.schedule(0, 0) == (0.02, 0.04, 0.08)


def test_retry_policy_validation():
    with pytest.raises(ValueError):
        RetryPolicy(timeout_s=0)
    with pytest.raises(ValueError):
        RetryPolicy(attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(jitter=1.5)
    with pytest.raises(ValueError):
        RetryPolicy(backoff_factor=0.5)


# -- rpc client ------------------------------------------------------------


def test_rpc_retries_through_transient_refusal():
    """The peer is down for the first attempt and back for the retry; the
    client's counters record one retry and no failures."""

    async def go():
        transport = ChannelTransport(2)
        _register_all(transport)
        await transport.start()
        client = RpcClient(
            transport,
            RetryPolicy(attempts=3, backoff_base_s=0.001, timeout_s=0.5),
        )
        transport.kill(1, mode="refuse")

        async def revive_soon():
            await asyncio.sleep(0.0005)
            transport.revive(1)

        reviver = asyncio.create_task(revive_soon())
        reply = await client.call(0, 1, {"kind": "ping", "x": 5})
        await reviver
        assert reply["echo"] == 5
        assert client.calls == 1
        assert client.retries >= 1
        assert client.failures == 0
        await transport.stop()

    run(go())


def test_rpc_exhaustion_raises_rpc_error():
    async def go():
        transport = ChannelTransport(2)
        _register_all(transport)
        await transport.start()
        client = RpcClient(
            transport, RetryPolicy(attempts=2, backoff_base_s=0.001)
        )
        transport.kill(1, mode="refuse")
        with pytest.raises(RpcError):
            await client.call(0, 1, {"kind": "ping"})
        assert client.failures == 1
        assert client.retries == 1
        await transport.stop()

    run(go())


def test_rpc_deadline_on_silent_peer_raises_timeout():
    async def go():
        transport = ChannelTransport(2)
        _register_all(transport)
        await transport.start()
        client = RpcClient(
            transport,
            RetryPolicy(attempts=2, timeout_s=0.02, backoff_base_s=0.001),
        )
        transport.kill(1, mode="silent")
        with pytest.raises(RpcTimeout):
            await client.call(0, 1, {"kind": "ping"})
        await transport.stop()

    run(go())


def test_rpc_sequence_numbers_are_per_source_node():
    async def go():
        transport = ChannelTransport(3)
        _register_all(transport)
        await transport.start()
        client = RpcClient(transport)
        await client.call(0, 1, {"x": 1})
        await client.call(0, 2, {"x": 2})
        await client.call(1, 2, {"x": 3})
        assert client._seq == {0: 2, 1: 1}
        await transport.stop()

    run(go())
