"""Tests for single-message rumor spreading."""

import math

import pytest

from repro.aggregates.broadcast import BroadcastProtocol, broadcast_rounds
from repro.exceptions import ConfigurationError


def test_broadcast_informs_all_nodes():
    result = broadcast_rounds(256, rng=1)
    assert result.all_informed
    assert result.informed == 256


def test_broadcast_rounds_logarithmic():
    result = broadcast_rounds(2048, rng=2)
    assert result.all_informed
    assert result.rounds <= 4 * math.log2(2048) + 12
    assert result.rounds >= math.log2(2048) / 2  # cannot beat doubling


def test_broadcast_growth_with_n_is_slow():
    small = broadcast_rounds(128, rng=3)
    large = broadcast_rounds(8192, rng=3)
    assert large.rounds - small.rounds <= 12


def test_broadcast_under_failures():
    result = broadcast_rounds(256, rng=4, failure_model=0.4)
    assert result.all_informed


def test_broadcast_with_tiny_budget_partial():
    result = broadcast_rounds(512, rng=5, max_rounds=2)
    assert not result.all_informed
    assert result.informed >= 1


def test_source_validation():
    with pytest.raises(ConfigurationError):
        BroadcastProtocol(10, source=10)
    with pytest.raises(ValueError):
        BroadcastProtocol(1, source=0)


def test_custom_source():
    result = broadcast_rounds(64, rng=6, source=63)
    assert result.all_informed
