"""Tests for the quantile-serving layer (one gossip pass, many queries)."""

import numpy as np
import pytest

from repro.core.service import ANSWER_BITS, QuantileService, QueryAnswer
from repro.exceptions import ConfigurationError
from repro.topology import ring
from repro.utils.rand import RandomSource


@pytest.fixture
def service(small_values) -> QuantileService:
    return QuantileService(small_values, eps=0.1, rng=3)


def _true_quantile(values: np.ndarray, phi: float) -> float:
    return float(np.quantile(values, phi))


def test_build_runs_one_fused_pass(service, small_values):
    assert service.n == small_values.size
    assert service.result.fused
    assert service.grid.size == 9
    assert service.rounds == service.gossip_metrics.rounds
    assert service.grid_answers.shape == (9,)
    # grid answers are real data values in increasing quantile order
    assert np.all(np.isfinite(service.grid_answers))
    assert np.all(np.diff(service.grid_answers) >= 0)


def test_grid_answers_track_true_quantiles(service, small_values):
    for index, phi in enumerate(service.grid):
        target = _true_quantile(small_values, float(phi))
        # values are the permutation of 1..256: 0.2 of rank space ≈ 51 values
        assert abs(service.grid_answers[index] - target) <= 0.2 * small_values.size


def test_quantile_query_serves_from_grid(service, small_values):
    answer = service.quantile(0.5)
    assert isinstance(answer, QueryAnswer)
    assert answer.source == "grid"
    assert answer.grid_index == 4
    assert answer.phi == 0.5
    assert abs(answer.value - _true_quantile(small_values, 0.5)) <= (
        0.2 * small_values.size
    )
    # on-grid φ: accuracy is just the per-lane query accuracy (eps/2 default)
    assert answer.accuracy == pytest.approx(0.05)


def test_off_grid_phi_widens_the_accuracy_bound(service):
    on_grid = service.quantile(0.3)
    off_grid = service.quantile(0.33)
    assert off_grid.grid_index == on_grid.grid_index  # nearest lane serves
    assert off_grid.accuracy == pytest.approx(on_grid.accuracy + 0.03)


def test_queries_cost_bits_not_rounds(service):
    rounds_before = service.rounds
    answers = service.batch_quantiles([0.1, 0.25, 0.5, 0.75, 0.9])
    assert len(answers) == 5
    assert service.rounds == rounds_before  # zero additional gossip
    assert service.queries_answered == 5
    assert service.query_metrics.messages == 5
    assert service.query_metrics.total_bits == 5 * ANSWER_BITS
    assert service.query_metrics.rounds == 0
    # the build pass accounting is untouched by serving
    assert service.gossip_metrics.queries == 0


def test_rank_of_inverts_the_grid(service, small_values):
    # small_values is a permutation of 1..256, so value v has rank v/256
    for value, expected in [(64.0, 0.25), (128.0, 0.5), (230.0, 0.9)]:
        answer = service.rank_of(value)
        assert answer.source == "grid"
        assert abs(answer.phi - expected) <= answer.accuracy
        assert answer.accuracy == pytest.approx(0.1 + 0.05)
    assert service.queries_answered == 3


def test_rank_of_clips_to_unit_interval(service):
    assert service.rank_of(-1e9).phi >= 0.0
    assert service.rank_of(1e9).phi <= 1.0


def test_self_quantiles_come_from_the_build_pass(service, small_values):
    estimates = service.self_quantiles()
    truth = np.argsort(np.argsort(small_values)) / small_values.size
    errors = np.abs(estimates - truth)
    assert float(np.mean(errors <= 0.2)) > 0.95
    assert service.queries_answered == 0  # reading estimates is free


def test_sketch_serves_phi_finer_than_grid(small_values):
    service = QuantileService(small_values, eps=0.25, rng=5, sketch_k=200)
    bound = service.sketch_accuracy()
    assert bound is not None and bound < 0.125  # tighter than eps/2
    # auto prefers the sketch once its bound beats the grid bracket
    answer = service.quantile(0.37)
    assert answer.source == "sketch"
    assert answer.accuracy == pytest.approx(bound)
    # forcing the grid still works
    forced = service.quantile(0.37, prefer="grid")
    assert forced.source == "grid"
    assert service.queries_answered == 2


def test_sketch_answers_are_accurate(small_values):
    service = QuantileService(small_values, eps=0.25, rng=6, sketch_k=200)
    for phi in (0.1, 0.37, 0.62, 0.9):
        answer = service.quantile(phi, prefer="sketch")
        target = _true_quantile(small_values, phi)
        assert abs(answer.value - target) <= 0.1 * small_values.size


def test_prefer_sketch_without_sketch_is_an_error(service):
    with pytest.raises(ConfigurationError):
        service.quantile(0.5, prefer="sketch")


def test_query_validation(service):
    with pytest.raises(ConfigurationError):
        service.quantile(1.5)
    with pytest.raises(ConfigurationError):
        service.quantile(0.5, prefer="oracle")


def test_summary_keys(service):
    service.quantile(0.5)
    summary = service.summary()
    assert summary == {
        "n": 256,
        "eps": 0.1,
        "grid_targets": 9,
        "chunks": 1,
        "fused": True,
        "rounds": service.rounds,
        "gossip_bits": service.gossip_metrics.total_bits,
        "queries_answered": 1,
        "query_bits": ANSWER_BITS,
        "sketch_items": 0,
        "answers_grid": 1,
        "answers_sketch": 0,
        "epoch": 0,
        "rebuilds": 0,
        "answers_degraded": 0,
        "stale_lanes": 0,
    }


def test_service_threads_build_parameters(small_values):
    service = QuantileService(
        small_values,
        eps=0.2,
        rng=7,
        fused=True,
        max_lanes=2,
        topology=ring(small_values.size, k=8),
        dtype="float32",
        engine="vectorized",
    )
    assert service.result.chunks == 2
    assert service.result.grid_values.dtype == np.float32
    answer = service.quantile(0.5)
    assert np.isfinite(answer.value)


def test_service_rejects_bad_build_parameters(small_values):
    with pytest.raises(ConfigurationError):
        QuantileService(small_values, eps=0.2, rng=8, engine="turbo")
    with pytest.raises(ConfigurationError):
        QuantileService(small_values, eps=0.2, rng=8, topology=ring(32, k=2))


def test_sequential_build_serves_identically_shaped_answers(small_values):
    service = QuantileService(small_values, eps=0.2, rng=9, fused=False)
    assert not service.result.fused
    answer = service.quantile(0.4)
    assert answer.source == "grid"
    assert np.isfinite(answer.value)


def test_deterministic_given_seed(small_values):
    first = QuantileService(small_values, eps=0.2, rng=RandomSource(11))
    second = QuantileService(small_values, eps=0.2, rng=RandomSource(11))
    assert np.array_equal(first.grid_answers, second.grid_answers)
