"""Multi-lane tournament fast path: fused sandwich runs, dtypes, accounting.

Covers the PR-5 surface: (n, L) column-stacked GossipNetworks sharing one
partner stream, lane-wise tournament phases, the fused ε/2 sandwich pair of
the exact-quantile driver, the fused Step-4 extrema pair, float32 value
lanes, and the batched round/message accounting.
"""

import numpy as np
import pytest

from repro.core.approx_quantile import approximate_quantile
from repro.core.exact_quantile import exact_quantile
from repro.core.three_tournament import run_three_tournament
from repro.core.two_tournament import run_two_tournament
from repro.exceptions import ConfigurationError
from repro.gossip.metrics import NetworkMetrics
from repro.gossip.network import GossipNetwork
from repro.utils.rand import RandomSource
from repro.utils.stats import rank_error


def keys(n):
    return np.arange(1.0, n + 1.0)


# ---- multi-lane pull surface -------------------------------------------------


def test_multilane_pull_shares_one_partner_matrix():
    values = np.stack([keys(64), keys(64)[::-1].copy()], axis=1)
    net = GossipNetwork(values, rng=3, keep_history=False)
    assert net.lanes == 2
    batch = net.pull(4)
    assert batch.partners.shape == (64, 4)
    assert batch.values.shape == (64, 4, 2)
    assert batch.lanes == 2
    # each lane reads its own column through the same partner matrix
    for lane in range(2):
        expected = values[:, lane][batch.partners]
        assert np.array_equal(batch.values[:, :, lane], expected)


def test_multilane_rounds_counted_once_with_per_lane_payload_bits():
    single = GossipNetwork(keys(64), rng=1, keep_history=True)
    double = GossipNetwork(
        np.stack([keys(64), keys(64)], axis=1), rng=1, keep_history=True
    )
    single.pull(3)
    double.pull(3)
    # one round record per round, not per lane
    assert single.metrics.rounds == double.metrics.rounds == 3
    assert single.metrics.messages == double.metrics.messages == 3 * 64
    # the two-lane message carries one extra 64-bit value
    assert (
        double.metrics.max_message_bits
        == single.metrics.max_message_bits + 64
    )
    assert len(double.metrics.history) == 3
    assert sum(r.messages for r in double.metrics.history) == double.metrics.messages


def test_multilane_failures_apply_to_every_lane():
    values = np.stack([keys(300), keys(300)], axis=1)
    net = GossipNetwork(values, rng=5, failure_model=0.4, keep_history=False)
    batch = net.pull(2)
    failed = ~batch.ok
    assert failed.sum() > 50
    # a failed node-round NaNs both lanes
    assert np.all(np.isnan(batch.values[failed]))
    assert np.all(np.isfinite(batch.values[batch.ok]))


def test_multilane_partner_stream_matches_single_lane():
    """One partner matrix per round, identical to the single-lane stream."""
    single = GossipNetwork(keys(128), rng=11, keep_history=False)
    double = GossipNetwork(
        np.stack([keys(128), keys(128)], axis=1), rng=11, keep_history=False
    )
    assert np.array_equal(single.pull(5).partners, double.pull(5).partners)


def test_multilane_set_values_and_snapshot_shapes():
    values = np.stack([keys(16), keys(16)], axis=1)
    net = GossipNetwork(values, rng=2, keep_history=False)
    snap = net.snapshot()
    assert snap.shape == (16, 2)
    net.set_values(np.zeros((16, 2)))
    assert np.all(net.values == 0.0)
    with pytest.raises(ConfigurationError):
        net.set_values(np.zeros(16))


# ---- dtype threading ---------------------------------------------------------


def test_float32_network_stores_and_pulls_float32():
    net = GossipNetwork(keys(64), rng=7, dtype="float32")
    assert net.dtype == np.dtype(np.float32)
    assert net.values.dtype == np.dtype(np.float32)
    assert net.pull(2).values.dtype == np.dtype(np.float32)


def test_float32_lanes_follow_the_same_partner_stream():
    a = GossipNetwork(keys(128), rng=9, dtype="float32", keep_history=False)
    b = GossipNetwork(keys(128), rng=9, dtype="float64", keep_history=False)
    assert np.array_equal(a.pull(3).partners, b.pull(3).partners)


def test_exact_quantile_float32_matches_float64():
    """Keys are ranks: float32 is exact, the same seed replays the same
    gossip schedule, and both dtypes return the true quantile."""
    values = np.random.default_rng(5).permutation(4096).astype(float)
    r64 = exact_quantile(values, phi=0.3, rng=17, fidelity="simulated")
    r32 = exact_quantile(values, phi=0.3, rng=17, fidelity="simulated",
                         dtype="float32")
    assert r64.value == r32.value
    assert r64.rounds == r32.rounds
    assert r64.iterations == r32.iterations


def test_exact_quantile_float32_guard_above_2_pow_24():
    """n >= 2**24 float32 keys are rejected up front (ranks would round).

    A zero-stride view fakes the 2**24-entry array without allocating it;
    ``np.asarray`` passes it through untouched, so the guard fires before
    any real work."""
    big = np.lib.stride_tricks.as_strided(
        np.zeros(1), shape=(2 ** 24,), strides=(0,)
    )
    with pytest.raises(ConfigurationError) as excinfo:
        exact_quantile(big, phi=0.5, dtype="float32")
    assert "float32" in str(excinfo.value)


def test_unsupported_dtype_rejected():
    with pytest.raises(ConfigurationError):
        GossipNetwork(keys(8), dtype=np.int32)
    with pytest.raises(ConfigurationError):
        approximate_quantile(keys(64), phi=0.5, eps=0.1, dtype="float16")


# ---- lane-wise tournaments ---------------------------------------------------


def test_two_tournament_lanes_match_independent_runs_statistically():
    """Each fused lane shifts its own band; idle lanes keep their values."""
    n = 2048
    rng = RandomSource(3)
    base = rng.random(n) * 100.0
    network = GossipNetwork(
        np.stack([base, base], axis=1), rng=4, keep_history=False
    )
    result = run_two_tournament(
        network, phi=(0.25, 0.75), eps=(0.1, 0.1), track_band=False
    )
    assert result.final_values.shape == (n, 2)
    # lane 0 drives values downward (min direction), lane 1 upward
    assert np.median(result.final_values[:, 0]) < np.median(base)
    assert np.median(result.final_values[:, 1]) > np.median(base)


def test_fused_phase_executes_max_of_lane_schedules():
    from repro.core.schedules import two_tournament_schedule

    n = 512
    base = RandomSource(8).random(n)
    lane_phis = (0.5, 0.9)  # very different schedule lengths
    schedules = [two_tournament_schedule(p, 0.05) for p in lane_phis]
    lengths = [s.num_iterations for s in schedules]
    assert lengths[0] != lengths[1]
    network = GossipNetwork(
        np.stack([base, base], axis=1), rng=9, keep_history=False
    )
    result = run_two_tournament(
        network, phi=lane_phis, eps=(0.05, 0.05), track_band=False
    )
    assert result.iterations == max(lengths)
    assert network.rounds == 2 * max(lengths)


def test_track_band_rejected_on_multilane_networks():
    network = GossipNetwork(
        np.stack([keys(64), keys(64)], axis=1), rng=1, keep_history=False
    )
    with pytest.raises(ConfigurationError):
        run_two_tournament(network, phi=0.5, eps=0.1, track_band=True)
    with pytest.raises(ConfigurationError):
        run_three_tournament(network, eps=0.1, track_band=True)


def test_per_lane_parameter_validation():
    network = GossipNetwork(
        np.stack([keys(64), keys(64)], axis=1), rng=1, keep_history=False
    )
    with pytest.raises(ConfigurationError):
        run_two_tournament(network, phi=(0.5,), eps=0.1, track_band=False)
    with pytest.raises(ConfigurationError):
        approximate_quantile(
            np.stack([keys(64), keys(64)], axis=1),
            phi=(0.1, 0.5, 0.9),
            eps=0.1,
        )


# ---- the fused sandwich pair -------------------------------------------------


def test_fused_pair_rank_errors_match_sequential_distribution():
    """Fused two-lane sandwich vs. the sequential pair: same rank-error
    distribution over seeds, strictly fewer executed rounds."""
    n = 2048
    data = keys(n)
    phi_lo, phi_hi, accuracy = 0.45, 0.55, 0.05
    fused_errors, sequential_errors = [], []
    fused_rounds, sequential_rounds = [], []
    for seed in range(8):
        lo = approximate_quantile(data, phi=phi_lo, eps=accuracy, rng=seed)
        hi = approximate_quantile(data, phi=phi_hi, eps=accuracy, rng=1000 + seed)
        sequential_errors.append(rank_error(data, lo.estimate, phi_lo))
        sequential_errors.append(rank_error(data, hi.estimate, phi_hi))
        sequential_rounds.append(lo.rounds + hi.rounds)

        fused = approximate_quantile(
            np.stack([data, data], axis=1),
            phi=(phi_lo, phi_hi),
            eps=accuracy,
            rng=2000 + seed,
        )
        fused_errors.append(rank_error(data, float(fused.estimate[0]), phi_lo))
        fused_errors.append(rank_error(data, float(fused.estimate[1]), phi_hi))
        fused_rounds.append(fused.rounds)

    # every run (both paths) meets the eps guarantee…
    assert max(fused_errors) <= accuracy
    assert max(sequential_errors) <= accuracy
    # …with comparable mean error (same distribution, not a degradation)
    assert np.mean(fused_errors) <= np.mean(sequential_errors) + accuracy / 2
    # and the fused pair executes strictly fewer rounds (max, not sum)
    assert all(f < s for f, s in zip(fused_rounds, sequential_rounds))
    # both lanes ran the same two-phase structure: rounds = max of the two
    # single-lane runs for identical (phi, eps) schedules
    single = approximate_quantile(data, phi=phi_lo, eps=accuracy, rng=0)
    assert fused_rounds[0] == single.rounds


def test_fused_pair_message_accounting_lands_in_round_records():
    """Regression for the pre-fusion bug: run_approx_pair recorded the
    pair's merged traffic outside any round record, misattributing it
    under keep_history=True.  The fused path records every message in the
    round that carried it, so the per-round history sums to the totals."""
    n = 256
    shared = NetworkMetrics(keep_history=True)
    network = GossipNetwork(
        np.stack([keys(n), keys(n)], axis=1),
        rng=6,
        metrics=shared,
        keep_history=True,
    )
    result = approximate_quantile(network=network, phi=(0.45, 0.55), eps=0.05)
    assert result.rounds == shared.rounds
    assert len(shared.history) == shared.rounds
    assert sum(r.messages for r in shared.history) == shared.messages
    assert sum(r.bits for r in shared.history) == shared.total_bits
    # every round is a tournament/vote round; nothing recorded out of round
    labels = {record.label for record in shared.history}
    assert labels <= {"2-tournament", "3-tournament", "3-tournament-vote"}
    assert all(record.messages > 0 for record in shared.history)


def test_exact_driver_simulated_runs_fused_pair_rounds():
    """The simulated driver executes (not charges) the sandwich pair: its
    per-label round histogram contains no 'approx-pair' charge labels."""
    values = np.random.default_rng(2).permutation(512).astype(float)
    result = exact_quantile(values, phi=0.5, rng=3, fidelity="simulated")
    assert result.value == float(np.sort(values)[255])
    # the metrics object runs with keep_history=False; spot-check instead
    # that the documented charge label is gone from the simulated path by
    # running the idealized one and confirming only substrate charges
    idealized = exact_quantile(values, phi=0.5, rng=3, fidelity="idealized")
    assert idealized.rounds > 0


# ---- fused extrema pair ------------------------------------------------------


def test_extrema_pair_matches_two_single_runs():
    from repro.aggregates.extrema import spread_extrema, spread_extrema_pair

    values = RandomSource(12).random(400) * 50.0
    lo = spread_extrema(values, mode="min", rng=1)
    hi = spread_extrema(values, mode="max", rng=2)
    pair = spread_extrema_pair(values, values, rng=3)
    assert pair.converged
    assert float(np.min(pair.lo_values)) == float(np.min(lo.values))
    assert float(np.max(pair.hi_values)) == float(np.max(hi.values))
    assert np.all(pair.lo_values == values.min())
    assert np.all(pair.hi_values == values.max())
    # fused: one round window instead of two
    assert pair.rounds < lo.rounds + hi.rounds


def test_extrema_pair_loop_and_vectorized_bit_identical():
    from repro.aggregates.extrema import ExtremaPairProtocol
    from repro.gossip.engine import run_protocol_loop, run_protocol_vectorized

    for mu, seed in ((0.0, 4), (0.3, 5)):
        values = RandomSource(seed).random(97) * 10.0
        failure = mu if mu > 0 else None
        loop = run_protocol_loop(
            ExtremaPairProtocol(values, values), rng=seed,
            failure_model=failure, raise_on_budget=False,
        )
        vec = run_protocol_vectorized(
            ExtremaPairProtocol(values, values), rng=seed,
            failure_model=failure, raise_on_budget=False,
        )
        assert loop.outputs == vec.outputs
        assert loop.rounds == vec.rounds
        assert loop.metrics.summary() == vec.metrics.summary()


def test_extrema_pair_validation():
    from repro.aggregates.extrema import ExtremaPairProtocol

    with pytest.raises(ConfigurationError):
        ExtremaPairProtocol([1.0], [2.0])
    with pytest.raises(ConfigurationError):
        ExtremaPairProtocol([1.0, 2.0], [1.0, 2.0, 3.0])


# ---- batched metrics recording ----------------------------------------------


def test_record_rounds_batch_equals_per_round_recording():
    batched = NetworkMetrics(keep_history=True)
    batched.record_rounds_batch(
        3, label="x", messages=[10, 0, 7], bits_each=80, failures=[1, 2, 0]
    )
    reference = NetworkMetrics(keep_history=True)
    for messages, failed in ((10, 1), (0, 2), (7, 0)):
        record = reference.begin_round(label="x")
        reference.record_failures(failed, record)
        reference.record_messages(messages, 80, record)
    assert batched.summary() == reference.summary()
    assert len(batched.history) == len(reference.history)
    for a, b in zip(batched.history, reference.history):
        assert (a.round_index, a.label, a.messages, a.bits, a.failed_nodes) == (
            b.round_index, b.label, b.messages, b.bits, b.failed_nodes
        )


def test_record_rounds_batch_scalar_and_validation():
    metrics = NetworkMetrics(keep_history=False)
    metrics.record_rounds_batch(4, label="y", messages=5, bits_each=10)
    assert metrics.rounds == 4
    assert metrics.messages == 20
    assert metrics.total_bits == 200
    metrics.record_rounds_batch(0)  # no-op
    assert metrics.rounds == 4
    with pytest.raises(ValueError):
        metrics.record_rounds_batch(-1)
    with pytest.raises(ValueError):
        metrics.record_rounds_batch(2, messages=[1])
    with pytest.raises(ValueError):
        metrics.record_rounds_batch(2, messages=-3)
