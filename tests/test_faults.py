"""Fault-injection subsystem: specs, schedules, injector, network overlay."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.faults import (
    FAULT_KINDS,
    Burst,
    CrashRestart,
    FaultInjector,
    MessageDelay,
    MessageDrop,
    MessageDuplication,
    Ramp,
    TargetedByDegree,
    ValueCorruption,
)
from repro.gossip.network import GossipNetwork
from repro.utils.rand import RandomSource


def _values(n=64, seed=5):
    return RandomSource(seed).random(n) * 100.0


# ---------------------------------------------------------------- specs


def test_spec_validation():
    with pytest.raises(ConfigurationError):
        MessageDrop(1.5)
    with pytest.raises(ConfigurationError):
        MessageDrop(-0.1)
    with pytest.raises(ConfigurationError):
        MessageDelay(0.1, max_delay=0)
    with pytest.raises(ConfigurationError):
        CrashRestart(0.1, downtime=0)
    with pytest.raises(ConfigurationError):
        ValueCorruption(0.1, magnitude=0.0)
    with pytest.raises(ConfigurationError):
        FaultInjector([])
    with pytest.raises(ConfigurationError):
        FaultInjector(["not-a-spec"])


def test_same_kind_specs_compose_by_union():
    injector = FaultInjector([MessageDrop(0.5), MessageDrop(0.5)], rng=0)
    probs = injector._kind_probabilities("drop", 0, 4)
    assert np.allclose(probs, 0.75)


def test_mu_bound_unions_crash_and_drop_only():
    injector = FaultInjector(
        [MessageDrop(0.2), CrashRestart(0.1), ValueCorruption(0.9)], rng=0
    )
    assert injector.mu_bound() == pytest.approx(1.0 - 0.8 * 0.9)
    assert FaultInjector(MessageDrop(1.0), rng=0).mu_bound() == 0.999


# ------------------------------------------------------------ schedules


def test_burst_fires_only_inside_window():
    injector = FaultInjector(Burst(MessageDrop(1.0), 2, 4), rng=1)
    per_round = [int(injector.draw(r, 16).dropped.sum()) for r in range(6)]
    assert per_round[:2] == [0, 0]
    assert per_round[2:4] == [16, 16]
    assert per_round[4:] == [0, 0]


def test_burst_validates_window():
    with pytest.raises(ConfigurationError):
        Burst(MessageDrop(0.5), 4, 4)


def test_ramp_scales_linearly_to_full_intensity():
    ramp = Ramp(MessageDrop(0.8), rounds=4)
    assert np.allclose(ramp.probabilities(0, 3), 0.2)
    assert np.allclose(ramp.probabilities(1, 3), 0.4)
    assert np.allclose(ramp.probabilities(3, 3), 0.8)
    assert np.allclose(ramp.probabilities(100, 3), 0.8)


def test_targeted_by_degree_weights_hubs():
    degrees = np.array([1.0, 2.0, 4.0])
    spec = TargetedByDegree(MessageDrop(0.8), degrees)
    assert np.allclose(spec.probabilities(0, 3), [0.2, 0.4, 0.8])
    inverse = TargetedByDegree(MessageDrop(0.8), degrees, mode="inverse-degree")
    assert np.allclose(inverse.probabilities(0, 3), [0.8, 0.4, 0.2])
    with pytest.raises(ConfigurationError):
        TargetedByDegree(MessageDrop(0.5), degrees, mode="bogus")
    with pytest.raises(ConfigurationError):
        spec.probabilities(0, 5)


def test_schedules_forward_wrapped_attributes():
    burst = Burst(MessageDelay(0.3, max_delay=7), 0, 10)
    assert burst.max_delay == 7
    injector = FaultInjector(burst, rng=0)
    assert injector.max_delay == 7
    assert FaultInjector(
        Ramp(CrashRestart(0.1, reset_values=True), 5), rng=0
    ).reset_on_restart


# ------------------------------------------------------------- injector


def test_draw_replays_bit_for_bit_after_begin():
    specs = [MessageDrop(0.3), MessageDelay(0.2), ValueCorruption(0.4)]
    injector = FaultInjector(specs, rng=42)
    first = [injector.draw(r, 32) for r in range(5)]
    injector.begin()
    second = [injector.draw(r, 32) for r in range(5)]
    for a, b in zip(first, second):
        assert np.array_equal(a.dropped, b.dropped)
        assert np.array_equal(a.delay, b.delay)
        assert np.array_equal(a.corruption, b.corruption)


def test_non_increasing_round_index_restarts_stream():
    injector = FaultInjector(MessageDrop(0.5), rng=7)
    first = injector.draw(0, 32).dropped
    injector.draw(1, 32)
    again = injector.draw(0, 32).dropped
    assert np.array_equal(first, again)
    assert injector.counters["drop"] == int(first.sum())


def test_fault_kind_draw_order_is_pinned():
    """The per-round draw order is a replay contract: reordering it would
    silently re-map every seeded chaos schedule."""
    assert FAULT_KINDS == ("drop", "duplicate", "delay", "crash", "corrupt")


def test_crash_downtime_window_and_restart():
    injector = FaultInjector(
        Burst(CrashRestart(1.0, downtime=3), 0, 1), rng=3
    )
    n = 8
    down = [injector.draw(r, n) for r in range(5)]
    assert down[0].crashed.all()
    assert down[1].crashed.all() and down[2].crashed.all()
    assert not down[3].crashed.any()
    assert down[3].restarted.all()
    assert not down[4].restarted.any()
    assert injector.counters["crash"] == 3 * n
    assert injector.counters["restart"] == n


def test_population_change_resets_crash_state():
    injector = FaultInjector(CrashRestart(0.5, downtime=10), rng=11)
    injector.draw(0, 64)
    faults = injector.draw(1, 16)  # e.g. an epoch rebuild over survivors
    assert faults.crashed.shape == (16,)
    assert not faults.restarted.any()


def test_counters_and_total_injected():
    injector = FaultInjector(
        [MessageDrop(1.0), MessageDuplication(1.0)], rng=0
    )
    injector.draw(0, 10)
    assert injector.counters["drop"] == 10
    assert injector.counters["duplicate"] == 10
    assert injector.total_injected == 20
    assert set(injector.counters) == set(FAULT_KINDS) | {"restart"}


def test_failure_model_view_matches_direct_draws():
    direct = FaultInjector([MessageDrop(0.4), CrashRestart(0.2)], rng=21)
    viewed = FaultInjector([MessageDrop(0.4), CrashRestart(0.2)], rng=21)
    model = viewed.as_failure_model()
    assert model.mu == viewed.mu_bound()
    rng = RandomSource(0)
    for r in range(5):
        assert np.array_equal(
            model.failure_mask(r, 32, rng), direct.draw(r, 32).suppressed
        )


# ------------------------------------------------------- network overlay


def test_attaching_injector_leaves_engine_stream_untouched():
    """A p=0 injector consumes only its private stream: partners and
    delivered values stay bit-identical to the fault-free network."""
    clean = GossipNetwork(_values(), rng=17)
    chaotic = GossipNetwork(
        _values(), rng=17,
        faults=FaultInjector([MessageDrop(0.0), ValueCorruption(0.0)], rng=5),
    )
    a = clean.pull(3)
    b = chaotic.pull(3)
    assert np.array_equal(a.partners, b.partners)
    assert np.array_equal(a.values, b.values)
    assert b.ok.all()
    assert chaotic.faults.total_injected == 0


def test_network_drop_suppresses_and_masks():
    net = GossipNetwork(
        _values(), rng=17, faults=FaultInjector(MessageDrop(1.0), rng=5)
    )
    batch = net.pull(2)
    assert not batch.ok.any()
    assert np.isnan(batch.values).all()
    assert net.metrics.failed_node_rounds == 2 * 64


def test_network_duplicates_charged_as_extra_messages():
    clean = GossipNetwork(_values(), rng=17)
    duped = GossipNetwork(
        _values(), rng=17,
        faults=FaultInjector(MessageDuplication(1.0), rng=5),
    )
    clean.pull(3)
    duped.pull(3)
    assert duped.metrics.messages == 2 * clean.metrics.messages
    assert duped.metrics.total_bits == 2 * clean.metrics.total_bits
    assert duped.metrics.faults_injected == 3 * 64


def test_network_delay_serves_snapshot_ring():
    values = np.arange(16, dtype=float)
    net = GossipNetwork(
        values, rng=17,
        faults=FaultInjector(MessageDelay(1.0, max_delay=2), rng=5),
    )
    # First batch: the ring is empty, so even delayed pulls are on time.
    first = net.pull(1)
    assert np.array_equal(
        first.values[first.ok], values[first.partners][first.ok]
    )
    # Overwrite every value; delayed pulls must now serve the *old* values
    # from the ring, not the current ones.
    net.set_values(values + 1000.0)
    second = net.pull(1)
    delayed = second.values[second.ok]
    assert delayed.size
    assert np.all(delayed < 1000.0)


def test_network_corruption_scales_payload_not_sender_state():
    values = np.full(32, 10.0)
    net = GossipNetwork(
        values, rng=17,
        faults=FaultInjector(ValueCorruption(1.0, magnitude=0.5), rng=5),
    )
    batch = net.pull(1)
    good = batch.values[batch.ok]
    assert np.all((good >= 5.0) & (good <= 15.0))
    assert not np.any(good == 10.0)
    # the sender's stored state is untouched — only the copies in flight
    assert np.array_equal(net.snapshot(), values)


def test_network_crash_restart_resets_values():
    values = np.arange(8, dtype=float)
    net = GossipNetwork(
        values, rng=17,
        faults=FaultInjector(
            Burst(CrashRestart(1.0, downtime=1, reset_values=True), 0, 1),
            rng=5,
        ),
    )
    net.set_values(values + 500.0)
    net.pull(1)          # round 0: everyone crashes
    assert np.array_equal(net.snapshot(), values + 500.0)
    net.pull(1)          # round 1: everyone restarts -> state loss
    assert np.array_equal(net.snapshot(), values)


def test_network_reset_rewinds_injector():
    net = GossipNetwork(
        _values(), rng=17, faults=FaultInjector(MessageDrop(0.5), rng=5)
    )
    first = net.pull(4)
    injected = net.faults.total_injected
    net.reset()
    assert net.faults.total_injected == 0
    second = net.pull(4)
    # The injector replays its schedule; the engine stream deliberately
    # does NOT rewind (reset() keeps the network's partner stream moving),
    # so only the fault counters — not the partners — must match.
    assert net.faults.total_injected == injected
    assert first.ok.sum() != 0 or second.ok.sum() != 0


def test_seeded_chaos_replays_bit_for_bit():
    def run():
        net = GossipNetwork(
            _values(), rng=17,
            faults=FaultInjector(
                [MessageDrop(0.2), MessageDelay(0.2), ValueCorruption(0.2)],
                rng=5,
            ),
        )
        batch = net.pull(5)
        return batch, dict(net.faults.counters)

    first, counters_a = run()
    second, counters_b = run()
    assert np.array_equal(first.partners, second.partners)
    assert np.array_equal(first.ok, second.ok)
    assert np.array_equal(
        first.values[first.ok], second.values[second.ok]
    )
    assert counters_a == counters_b
