"""Tests for the message-level engine and the protocol abstraction."""

from typing import Any, List

import numpy as np
import pytest

from repro.exceptions import ConvergenceError, ProtocolError
from repro.gossip.engine import run_protocol
from repro.gossip.protocol import Action, GossipProtocol


class CountingProtocol(GossipProtocol):
    """Every node pushes '1' each round; nodes count what they receive."""

    name = "counting-test"

    def __init__(self, n: int, rounds: int) -> None:
        super().__init__(n)
        self.rounds_budget = rounds
        self.received = np.zeros(n, dtype=int)
        self.sent = np.zeros(n, dtype=int)

    def act(self, node: int, round_index: int) -> Action:
        return Action.push(1)

    def on_receive(self, node, payload, sender, kind, round_index) -> None:
        self.received[node] += payload

    def on_send_success(self, node, round_index) -> None:
        self.sent[node] += 1

    def is_done(self, round_index: int) -> bool:
        return round_index >= self.rounds_budget

    def outputs(self) -> List[Any]:
        return self.received.tolist()


class PullEchoProtocol(GossipProtocol):
    """Nodes pull their partner's id; used to exercise the pull path."""

    name = "pull-echo"

    def __init__(self, n: int) -> None:
        super().__init__(n)
        self.seen = [[] for _ in range(n)]

    def act(self, node: int, round_index: int) -> Action:
        return Action.pull()

    def serve_pull(self, node: int, requester: int, round_index: int):
        return node

    def on_receive(self, node, payload, sender, kind, round_index) -> None:
        assert kind == "pull"
        assert payload == sender
        self.seen[node].append(payload)

    def is_done(self, round_index: int) -> bool:
        return round_index >= 3

    def outputs(self):
        return self.seen


def test_push_protocol_conserves_messages():
    protocol = CountingProtocol(50, rounds=10)
    result = run_protocol(protocol, rng=1)
    assert result.completed
    assert result.rounds == 10
    # every round every node pushes exactly one message
    assert result.metrics.messages == 50 * 10
    assert protocol.sent.sum() == 50 * 10
    assert protocol.received.sum() == 50 * 10


def test_pull_protocol_receives_partner_payloads():
    protocol = PullEchoProtocol(20)
    result = run_protocol(protocol, rng=2)
    assert result.completed
    total = sum(len(seen) for seen in protocol.seen)
    assert total == 20 * 3
    # a node never pulls from itself
    for node, seen in enumerate(protocol.seen):
        assert node not in seen


def test_failures_reduce_message_count():
    protocol = CountingProtocol(200, rounds=10)
    result = run_protocol(protocol, rng=3, failure_model=0.5)
    assert result.metrics.messages < 200 * 10
    assert result.metrics.failed_node_rounds > 200 * 10 * 0.3


def test_round_budget_exhaustion_raises_or_reports():
    class NeverDone(CountingProtocol):
        def is_done(self, round_index: int) -> bool:
            return False

    with pytest.raises(ConvergenceError):
        run_protocol(NeverDone(10, rounds=1), rng=4, max_rounds=5)
    result = run_protocol(
        NeverDone(10, rounds=1), rng=4, max_rounds=5, raise_on_budget=False
    )
    assert not result.completed
    assert result.rounds == 5


def test_invalid_action_type_raises():
    class BadProtocol(CountingProtocol):
        def act(self, node, round_index):
            return "push"

    with pytest.raises(ProtocolError):
        run_protocol(BadProtocol(8, rounds=2), rng=5)


def test_action_validation():
    with pytest.raises(ValueError):
        Action("teleport")
    assert Action.idle().kind == "idle"
    assert Action.push(1).payload == 1
    assert Action.pushpull(2.0).kind == "pushpull"


def test_protocol_requires_two_nodes():
    with pytest.raises(ValueError):
        CountingProtocol(1, rounds=1)


def test_engine_determinism():
    a = CountingProtocol(30, rounds=5)
    b = CountingProtocol(30, rounds=5)
    run_protocol(a, rng=7)
    run_protocol(b, rng=7)
    assert np.array_equal(a.received, b.received)


def test_completion_exactly_at_budget_reports_completed():
    # The protocol becomes done exactly when the budget runs out; the engine
    # must report completion instead of raising (the old post-loop
    # double-check existed to catch this boundary — the restructured loop
    # covers it by evaluating is_done after the final round).
    protocol = CountingProtocol(10, rounds=5)
    result = run_protocol(protocol, rng=1, max_rounds=5)
    assert result.completed
    assert result.rounds == 5


def test_budget_zero_rounds():
    protocol = CountingProtocol(10, rounds=0)
    result = run_protocol(protocol, rng=1, max_rounds=5)
    assert result.completed
    assert result.rounds == 0
    assert result.metrics.messages == 0


def test_raise_on_budget_false_returns_partial_result():
    class NeverDone(CountingProtocol):
        def is_done(self, round_index: int) -> bool:
            return False

    protocol = NeverDone(12, rounds=1)
    result = run_protocol(
        protocol, rng=6, max_rounds=4, raise_on_budget=False
    )
    assert not result.completed
    assert result.rounds == 4
    # the partial run still did real work and accounted for it
    assert result.metrics.messages == 12 * 4
    assert result.outputs == protocol.received.tolist()


def test_raise_on_budget_false_on_vectorized_engine():
    from repro.aggregates.push_sum import PushSumProtocol
    from repro.gossip.engine import run_protocol_vectorized

    protocol = PushSumProtocol(np.arange(1.0, 17.0), rounds=50)
    result = run_protocol_vectorized(
        protocol, rng=3, max_rounds=10, raise_on_budget=False
    )
    assert not result.completed
    assert result.rounds == 10

    with pytest.raises(ConvergenceError):
        run_protocol_vectorized(
            PushSumProtocol(np.arange(1.0, 17.0), rounds=50), rng=3, max_rounds=10
        )


def test_engine_selection_validates_name():
    from repro.exceptions import ConfigurationError
    from repro.gossip.engine import set_default_engine

    with pytest.raises(ConfigurationError):
        run_protocol(CountingProtocol(8, rounds=1), rng=1, engine="warp")
    with pytest.raises(ConfigurationError):
        set_default_engine("warp")


def test_forced_loop_engine_matches_default_for_plain_protocols():
    a = CountingProtocol(30, rounds=5)
    b = CountingProtocol(30, rounds=5)
    run_protocol(a, rng=7, engine="loop")
    run_protocol(b, rng=7)  # auto → loop for non-batch protocols
    assert np.array_equal(a.received, b.received)
