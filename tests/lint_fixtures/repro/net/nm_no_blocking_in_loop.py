"""Near miss: cooperative sleep, and blocking work kept out of coroutines."""

import asyncio
import time


def measure(fn):
    started = time.perf_counter()
    fn()
    return time.perf_counter() - started


async def throttle(delay_s):
    await asyncio.sleep(delay_s)
    return delay_s
