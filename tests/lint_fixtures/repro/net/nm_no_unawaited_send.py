"""Near miss: every coroutine send is awaited, gathered or scheduled."""

import asyncio


async def send_update(peer, payload):
    return {"peer": peer, "payload": payload}


async def broadcast(payload):
    await send_update(0, payload)
    pending = asyncio.ensure_future(send_update(1, payload))
    replies = await asyncio.gather(send_update(2, payload), pending)
    return replies
