"""True positive: event-loop clock read outside repro.net.transport."""

import asyncio


async def measure(coro):
    loop = asyncio.get_running_loop()
    started = loop.time()
    await coro
    return loop.time() - started
