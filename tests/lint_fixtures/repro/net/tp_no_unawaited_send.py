"""True positive: a coroutine send called without await — nothing is sent."""


async def send_update(peer, payload):
    return {"peer": peer, "payload": payload}


async def broadcast(payload):
    send_update(0, payload)
    return True
