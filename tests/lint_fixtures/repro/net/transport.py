"""Scoping near miss: repro.net.transport owns loop.time() latency reads."""

import asyncio


async def timed_call(handler, frame):
    loop = asyncio.get_running_loop()
    started = loop.time()
    reply = await handler(frame)
    return reply, loop.time() - started
