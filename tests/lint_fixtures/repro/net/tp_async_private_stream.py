"""True positive: one shared RandomSource handed to every spawned task."""

import asyncio

from repro.utils.rand import RandomSource


async def worker(stream):
    return stream.random()


async def fan_out():
    source = RandomSource(7)
    tasks = []
    for _ in range(4):
        tasks.append(asyncio.create_task(worker(source)))
    return await asyncio.gather(*tasks)
