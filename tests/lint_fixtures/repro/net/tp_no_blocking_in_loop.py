"""True positive: a synchronous sleep inside a coroutine stalls the loop."""

import time


async def throttle(delay_s):
    time.sleep(delay_s)
    return delay_s
