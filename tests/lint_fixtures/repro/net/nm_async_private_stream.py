"""Near miss: per-task streams are derived before the fan-out."""

import asyncio

from repro.utils.rand import RandomSource


async def worker(stream):
    return stream.random()


async def fan_out():
    source = RandomSource(7)
    streams = source.spawn(4)
    tasks = []
    for stream in streams:
        tasks.append(asyncio.create_task(worker(stream)))
    return await asyncio.gather(*tasks)
