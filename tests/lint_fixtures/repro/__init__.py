# Fixture package chain: makes module_name_for resolve fixtures as repro.*.
