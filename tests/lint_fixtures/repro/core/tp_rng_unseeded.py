"""True positive: unseeded default_rng() cannot reproduce a run."""

import numpy as np


def make_generator():
    return np.random.default_rng()
