"""True positive: a FaultInjector storing the caller's generator."""


class FaultInjector:
    def __init__(self, rng):
        self._rng = rng
