"""True positive: a wall-clock timestamp in algorithm code."""

import time


def stamp():
    return time.time()
