"""Near miss: a justified suppression is honoured and lints clean."""

import numpy as np


def middle(values):
    # repro-lint: disable=stable-sort -- fixture: demonstrates a justified suppression being honoured
    return np.sort(values)
