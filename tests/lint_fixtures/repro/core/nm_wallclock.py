"""Near miss: perf_counter durations are always allowed."""

import time


def timed():
    start = time.perf_counter()
    return time.perf_counter() - start
