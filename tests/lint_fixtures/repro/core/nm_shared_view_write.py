"""Near miss: reads are fine, and writes go to a private copy."""

from repro.utils.views import ReadOnlyArray


def count_survivors(alive: ReadOnlyArray) -> int:
    mask = alive.copy()
    mask[0] = False
    first = bool(alive[0])
    return int(mask.sum()) + int(first)
