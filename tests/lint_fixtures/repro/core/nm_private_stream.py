"""Near miss: deriving a private SeedSequence from the caller's source."""


class FaultInjector:
    def __init__(self, rng):
        self._seed_seq = rng.seed_sequence
        self._rng = None
