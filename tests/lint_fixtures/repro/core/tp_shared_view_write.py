"""True positive: element assignment into a ReadOnlyArray parameter."""

from repro.utils.views import ReadOnlyArray


def knock_out(alive: ReadOnlyArray) -> None:
    alive[0] = False
