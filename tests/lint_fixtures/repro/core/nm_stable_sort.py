"""Near miss: both sorts pin kind="stable"; builtin sorted() is untracked."""

import numpy as np


def middle(values):
    ranks = np.argsort(values, kind="stable")
    ordered = np.sort(values, kind="stable")
    smallest = sorted(values.tolist())
    return ordered[ranks[0]], smallest[0]
