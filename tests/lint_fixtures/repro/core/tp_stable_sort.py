"""True positive: default introsort on a replay-critical path."""

import numpy as np


def middle(values):
    return np.sort(values)[values.size // 2]
