"""Near miss: seeded construction and SeedSequence stay allowed."""

import numpy as np
from numpy.random import SeedSequence


def make_generator(seed):
    if seed is None:
        seed = SeedSequence(12345)
    return np.random.default_rng(seed)
