"""True positive: driver accepts metrics= but drops it on the helper call."""


def _helper(values, metrics=None):
    return values, metrics


def driver(values, metrics=None):
    return _helper(values)
