"""True positive: a justification-less suppression (not honoured) and a typo."""

import numpy as np

MARKER = 1  # repro-lint: disable=no-such-rule -- the rule name is a typo


def middle(values):
    return np.sort(values)  # repro-lint: disable=stable-sort
