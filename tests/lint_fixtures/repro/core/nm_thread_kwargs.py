"""Near miss: the tracked kwarg is forwarded (or explicitly pinned)."""


def _helper(values, metrics=None):
    return values, metrics


def driver(values, metrics=None):
    forwarded = _helper(values, metrics=metrics)
    pinned = _helper(values, metrics=None)
    return forwarded, pinned
