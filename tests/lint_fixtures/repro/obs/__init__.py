# Fixture package chain (see ../../README.md).
