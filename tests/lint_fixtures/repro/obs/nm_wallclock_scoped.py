"""Near miss: repro.obs is the timing layer -- wall clock allowed here."""

import time


def stamp():
    return time.time()
