"""Dynamic-topology invariants: churn, edge resampling, engine equivalence.

Locks down the :mod:`repro.topology.dynamic` contract:

* a :class:`StaticProcess` is bit-identical to passing the topology
  directly (the dynamic plumbing cannot perturb static streams);
* loop and vectorized engines stay bit-identical under every process;
* mass is conserved under churn — push-sum ``s``/``w`` totals exactly,
  token multiplicities via the failure-model adapter;
* seeded join/leave schedules and view resamples are deterministic;
* process samplers only ever target active nodes.
"""

import numpy as np
import pytest

from repro.aggregates.broadcast import BroadcastProtocol
from repro.aggregates.push_sum import PushSumProtocol, push_sum_average
from repro.core.tokens import distribute_tokens
from repro.exceptions import ConfigurationError
from repro.gossip.engine import run_protocol, run_protocol_loop, run_protocol_vectorized
from repro.gossip.network import GossipNetwork
from repro.topology import (
    ChurnProcess,
    EdgeResamplingProcess,
    StaticProcess,
    build_topology,
    preferential_attachment,
    ring,
    watts_strogatz,
)
from repro.utils.rand import RandomSource


def _values(n, seed=3):
    return RandomSource(seed).random(n) * 100.0


# ---- static-process sanity grid: the plumbing is invisible -------------------


@pytest.mark.parametrize("topo_factory", [
    lambda n: None,
    lambda n: ring(n, k=2),
    lambda n: watts_strogatz(n, 6, 0.2, rng=n),
], ids=["complete", "ring", "small-world"])
@pytest.mark.parametrize("n,seed", [(64, 0), (129, 11)])
def test_static_process_is_bit_identical_to_direct_topology(topo_factory, n, seed):
    topo = topo_factory(n)
    direct = run_protocol_loop(
        PushSumProtocol(_values(n), rounds=20), rng=seed, topology=topo,
    )
    process = StaticProcess(topology=topo, n=n)
    via_process = run_protocol_loop(
        PushSumProtocol(_values(n), rounds=20), rng=seed,
        topology_process=process,
    )
    assert direct.outputs == via_process.outputs
    assert direct.metrics.summary() == via_process.metrics.summary()


@pytest.mark.parametrize("topo_factory", [
    lambda n: None,
    lambda n: ring(n, k=2),
], ids=["complete", "ring"])
def test_static_process_loop_vectorized_equivalence(topo_factory):
    n, seed = 96, 5
    loop = run_protocol_loop(
        PushSumProtocol(_values(n), rounds=15), rng=seed,
        topology_process=StaticProcess(topology=topo_factory(n), n=n),
    )
    vec = run_protocol_vectorized(
        PushSumProtocol(_values(n), rounds=15), rng=seed,
        topology_process=StaticProcess(topology=topo_factory(n), n=n),
    )
    assert loop.outputs == vec.outputs
    assert loop.metrics.summary() == vec.metrics.summary()


# ---- static streams stay pinned to the PR 2/3 behaviour ----------------------


#: sha256 prefixes of seeded push-sum outputs (n=257, rounds=20, rng=12) on
#: static topologies, recorded before the dynamic-topology subsystem landed.
#: Both engines must keep producing these exact streams: the dynamic
#: plumbing must never perturb a static run.
_STATIC_STREAM_PINS = {
    "complete": "603fbcc07f75315b",
    "small-world": "cd5f6733f409bf95",
}


@pytest.mark.parametrize("topo_name", sorted(_STATIC_STREAM_PINS))
@pytest.mark.parametrize("runner", [run_protocol_loop, run_protocol_vectorized],
                         ids=["loop", "vectorized"])
def test_static_topology_streams_are_regression_pinned(topo_name, runner):
    import hashlib

    topo = (
        None if topo_name == "complete"
        else build_topology("small-world", 257, degree=6, rng=1)
    )
    result = runner(
        PushSumProtocol(_values(257), rounds=20), rng=12, topology=topo
    )
    digest = hashlib.sha256(
        np.asarray(result.outputs, dtype=float).tobytes()
    ).hexdigest()[:16]
    assert digest == _STATIC_STREAM_PINS[topo_name]


# ---- loop == vectorized under dynamic processes ------------------------------


def _process_factories(n):
    return {
        "churn-complete": lambda: ChurnProcess(n=n, churn_rate=0.2, rng=9),
        "churn-sparse": lambda: ChurnProcess(
            topology=watts_strogatz(n, 6, 0.2, rng=n), churn_rate=0.2, rng=9
        ),
        "resample": lambda: EdgeResamplingProcess(
            n, view_size=4, resample_every=3, rng=9
        ),
        "resample-symmetrized": lambda: EdgeResamplingProcess(
            n, view_size=4, resample_every=2, symmetrize=True, rng=9
        ),
    }


@pytest.mark.parametrize("kind", list(_process_factories(8)))
@pytest.mark.parametrize("protocol_factory", [
    lambda n: PushSumProtocol(_values(n), rounds=18),
    lambda n: BroadcastProtocol(n, source=1),
], ids=["push-sum", "broadcast"])
@pytest.mark.parametrize("n,seed", [(64, 0), (129, 7)])
def test_loop_and_vectorized_agree_under_dynamic_topologies(
    kind, protocol_factory, n, seed
):
    factory = _process_factories(n)[kind]
    loop = run_protocol_loop(
        protocol_factory(n), rng=seed, topology_process=factory(),
        raise_on_budget=False,
    )
    vec = run_protocol_vectorized(
        protocol_factory(n), rng=seed, topology_process=factory(),
        raise_on_budget=False,
    )
    assert loop.outputs == vec.outputs
    assert loop.rounds == vec.rounds
    assert loop.metrics.summary() == vec.metrics.summary()


def test_same_process_instance_can_be_reused_across_runs():
    n = 80
    process = ChurnProcess(n=n, churn_rate=0.3, rng=2)
    first = run_protocol_loop(
        PushSumProtocol(_values(n), rounds=10), rng=1, topology_process=process
    )
    second = run_protocol_loop(
        PushSumProtocol(_values(n), rounds=10), rng=1, topology_process=process
    )
    assert first.outputs == second.outputs  # begin() replays the schedule


# ---- mass conservation under churn -------------------------------------------


@pytest.mark.parametrize("base", ["complete", "small-world"])
@pytest.mark.parametrize("engine", ["loop", "vectorized"])
def test_push_sum_mass_and_weight_conserved_under_churn(base, engine):
    n = 256
    topology = (
        None if base == "complete"
        else build_topology("small-world", n, degree=6, rng=4)
    )
    process = ChurnProcess(
        n=n, topology=topology, churn_rate=0.15, rng=8
    )
    values = _values(n)
    protocol = PushSumProtocol(values, rounds=40)
    run_protocol(
        protocol, rng=3, topology_process=process, engine=engine,
        max_rounds=41, raise_on_budget=False,
    )
    assert protocol.total_mass == pytest.approx(values.sum(), rel=1e-12)
    assert protocol.total_weight == pytest.approx(n, rel=1e-12)
    # churn actually happened
    assert min(process.active_history) < n


@pytest.mark.parametrize("engine", ["loop", "vectorized"])
def test_token_multiplicities_conserved_under_churn_failures(engine):
    n = 512
    process = ChurnProcess(n=n, churn_rate=0.2, rejoin_rate=0.5, rng=6)
    result = distribute_tokens(
        item_nodes=[3, 77, 200],
        multiplicity=8,
        n=n,
        rng=11,
        failure_model=process.as_failure_model(),
        engine=engine,
    )
    # distribute_tokens post-conditions already assert exact multiplicities;
    # verify explicitly plus that churn interfered at all.
    for item in range(3):
        assert result.copies_of(item) == 8
    assert result.failed_pushes > 0


# ---- determinism of seeded schedules -----------------------------------------


def test_churn_schedule_is_deterministic_and_seed_sensitive():
    masks = {}
    for seed in (1, 1, 2):
        process = ChurnProcess(n=64, churn_rate=0.3, rng=seed)
        process.begin()
        trace = np.stack([process.round_state(i).active for i in range(40)])
        masks.setdefault(seed, []).append(trace)
    assert (masks[1][0] == masks[1][1]).all()
    assert not (masks[1][0] == masks[2][0]).all()


def test_edge_resampling_schedule_is_deterministic_and_periodic():
    a = EdgeResamplingProcess(48, view_size=4, resample_every=5, rng=3)
    b = EdgeResamplingProcess(48, view_size=4, resample_every=5, rng=3)
    a.begin()
    b.begin()
    for i in range(12):
        sa = a.round_state(i)
        sb = b.round_state(i)
        assert (a.topology.indices == b.topology.indices).all()
        assert sa.active.all()
    # 12 rounds at period 5 -> resamples at rounds 0, 5, 10
    assert a.resamples == 3
    graph_round_0 = None
    a.begin()
    first = a.round_state(0)
    indices0 = a.topology.indices.copy()
    a.round_state(1)
    assert (a.topology.indices == indices0).all()  # unchanged within a period
    a.round_state(2), a.round_state(3), a.round_state(4)
    a.round_state(5)
    assert not (a.topology.indices == indices0).all()  # refreshed on schedule


# ---- samplers only target active nodes ---------------------------------------


@pytest.mark.parametrize("base", ["complete", "ring"])
def test_churn_partners_are_always_active_and_never_self(base):
    n = 200
    topology = None if base == "complete" else ring(n, k=3)
    process = ChurnProcess(n=n, topology=topology, churn_rate=0.4, rng=13)
    process.begin()
    rng = RandomSource(0)
    for i in range(25):
        state = process.round_state(i)
        partners = state.sampler.draw_round(rng)
        active = state.active
        assert active.sum() >= 2
        # every active node's partner is active and not itself
        assert np.all(active[partners[active]])
        assert not np.any(partners[active] == np.flatnonzero(active))
        if base == "ring":
            # partners come from the base neighbor lists
            offsets = (partners[active] - np.flatnonzero(active)) % n
            assert np.all((offsets <= 3) | (offsets >= n - 3))


def test_edge_resampling_partners_come_from_current_views():
    n = 120
    process = EdgeResamplingProcess(n, view_size=5, resample_every=2, rng=21)
    process.begin()
    rng = RandomSource(1)
    for i in range(6):
        state = process.round_state(i)
        partners = state.sampler.draw_round(rng)
        topo = process.topology
        for node in (0, 17, n - 1):
            assert partners[node] in topo.neighbors(node)
        assert not np.any(partners == np.arange(n))  # views exclude self


# ---- configuration errors ----------------------------------------------------


def test_process_and_topology_are_mutually_exclusive():
    n = 32
    with pytest.raises(ConfigurationError):
        run_protocol_loop(
            PushSumProtocol(_values(n), rounds=5), rng=0,
            topology=ring(n), topology_process=ChurnProcess(n=n, rng=0),
        )


def test_process_size_must_match_protocol():
    with pytest.raises(ConfigurationError):
        run_protocol_loop(
            PushSumProtocol(_values(32), rounds=5), rng=0,
            topology_process=ChurnProcess(n=64, rng=0),
        )


def test_process_rejects_peer_sampling_override():
    n = 32
    with pytest.raises(ConfigurationError):
        run_protocol_loop(
            PushSumProtocol(_values(n), rounds=5), rng=0,
            topology_process=ChurnProcess(n=n, rng=0),
            peer_sampling="round-robin",
        )


def test_churn_process_parameter_validation():
    with pytest.raises(ConfigurationError):
        ChurnProcess(n=16, churn_rate=1.0)
    with pytest.raises(ConfigurationError):
        ChurnProcess(n=16, churn_rate=0.1, rejoin_rate=1.5)
    with pytest.raises(ConfigurationError):
        ChurnProcess(n=16, churn_rate=0.1, min_active=1)
    with pytest.raises(ConfigurationError):
        ChurnProcess()
    with pytest.raises(ConfigurationError):
        EdgeResamplingProcess(16, view_size=0)
    with pytest.raises(ConfigurationError):
        EdgeResamplingProcess(16, view_size=4, resample_every=0)


def test_churn_never_drops_below_min_active():
    process = ChurnProcess(n=8, churn_rate=0.9, rejoin_rate=0.05, min_active=3, rng=1)
    process.begin()
    for i in range(100):
        assert process.round_state(i).active.sum() >= 2
        # the schedule-level mask respects min_active even when the
        # per-round gossipable set is smaller on a sparse base
        assert process.active.sum() >= 3


# ---- GossipNetwork pull surface ----------------------------------------------


def test_gossip_network_pull_under_churn_targets_active_nodes():
    n = 128
    process = ChurnProcess(n=n, churn_rate=0.3, rng=4)
    network = GossipNetwork(
        _values(n), rng=2, topology_process=process
    )
    batch = network.pull(k=6)
    assert batch.partners.shape == (n, 6)
    assert np.isnan(batch.values[~batch.ok]).all()
    assert np.isfinite(batch.values[batch.ok]).all()
    assert network.rounds == 6
    # departed pullers are marked failed
    assert (~batch.ok).any()


def test_gossip_network_rejects_topology_and_process_together():
    with pytest.raises(ConfigurationError):
        GossipNetwork(
            _values(32), rng=0, topology=ring(32),
            topology_process=ChurnProcess(n=32, rng=0),
        )


def test_gossip_network_rejects_ineffective_overrides_under_process():
    # mirror of the engine path: overrides the process would silently
    # swallow are configuration errors
    with pytest.raises(ConfigurationError):
        GossipNetwork(
            _values(32), rng=0, peer_sampling="round-robin",
            topology_process=ChurnProcess(n=32, rng=0),
        )
    with pytest.raises(ConfigurationError):
        GossipNetwork(
            _values(32), rng=0, allow_self_contact=True,
            topology_process=ChurnProcess(n=32, rng=0),
        )


def test_gossip_network_reset_restarts_the_process():
    n = 64
    network = GossipNetwork(
        _values(n), rng=2,
        topology_process=ChurnProcess(n=n, churn_rate=0.3, rng=4),
    )
    first = network.pull(k=4).ok.copy()
    history_before = list(network.topology_process.active_history)
    network.reset()
    # begin() replays the schedule from round 0 (partner rng differs, the
    # active pattern is schedule-driven and must match)
    second = network.pull(k=4).ok.copy()
    assert network.topology_process.active_history == history_before
    assert first.shape == second.shape


# ---- push_sum convenience wrapper --------------------------------------------


def test_push_sum_average_accepts_topology_process():
    n = 128
    values = _values(n)
    result = push_sum_average(
        values, rng=5, rounds=30,
        topology_process=EdgeResamplingProcess(n, view_size=6, rng=2),
    )
    assert result.estimates.shape == (n,)
    assert np.isfinite(result.estimates).all()
    assert abs(np.mean(result.estimates) - values.mean()) < 1.0


# ---- degree-correlated departures (leave_weights) ----------------------------


def test_uniform_leave_weights_match_the_default_schedule_exactly():
    """Shaping multiplies probabilities but never adds draws: all-ones
    weights consume the private stream identically to the default, so the
    generated masks are byte-identical."""
    n = 64
    plain = ChurnProcess(n=n, churn_rate=0.3, rng=7)
    weighted = ChurnProcess(
        n=n, churn_rate=0.3, leave_weights=np.ones(n), rng=7
    )
    plain.begin()
    weighted.begin()
    for i in range(30):
        np.testing.assert_array_equal(
            plain.round_state(i).active, weighted.round_state(i).active
        )


def test_degree_weights_require_a_non_complete_base_topology():
    with pytest.raises(ConfigurationError, match="degree"):
        ChurnProcess(n=32, churn_rate=0.2, leave_weights="degree", rng=0)


def test_leave_weights_validation():
    base = build_topology("small-world", 32, degree=4, rng=1)
    with pytest.raises(ConfigurationError, match="unknown leave_weights"):
        ChurnProcess(topology=base, leave_weights="betweenness", rng=0)
    with pytest.raises(ConfigurationError, match="shape"):
        ChurnProcess(topology=base, leave_weights=np.ones(5), rng=0)
    with pytest.raises(ConfigurationError, match=r"\[0, 1\]"):
        ChurnProcess(topology=base, leave_weights=np.full(32, 2.0), rng=0)


def test_degree_weighted_departures_bias_toward_hubs():
    """On a preferential-attachment graph, hubs (top-degree quartile) must
    spend measurably more rounds inactive than leaves under
    leave_weights='degree' — the adversarial churn pattern."""
    n = 128
    base = preferential_attachment(n, m=3, rng=5)
    process = ChurnProcess(
        topology=base, churn_rate=0.3, rejoin_rate=0.3,
        leave_weights="degree", rng=9,
    )
    process.begin()
    inactive_rounds = np.zeros(n)
    for i in range(200):
        inactive_rounds += ~process.round_state(i).active
    order = np.argsort(base.degrees)
    leaves = order[: n // 4]
    hubs = order[-n // 4:]
    assert inactive_rounds[hubs].mean() > 2.0 * inactive_rounds[leaves].mean()
    # The max-degree hub churns at the full rate; some low-degree node
    # should have been near-immune.
    assert inactive_rounds[order[0]] < inactive_rounds[order[-1]]


@pytest.mark.parametrize("engine", ["loop", "vectorized"])
def test_push_sum_mass_conserved_under_hub_weighted_churn(engine):
    """The regression the satellite asks for: conservation survives the
    worst case where the best-connected nodes are the ones leaving."""
    n = 128
    base = preferential_attachment(n, m=3, rng=4)
    process = ChurnProcess(
        topology=base, churn_rate=0.2, leave_weights="degree", rng=8,
    )
    values = _values(n)
    protocol = PushSumProtocol(values, rounds=40)
    run_protocol(
        protocol, rng=3, topology_process=process, engine=engine,
        max_rounds=41, raise_on_budget=False,
    )
    assert protocol.total_mass == pytest.approx(values.sum(), rel=1e-12)
    assert protocol.total_weight == pytest.approx(n, rel=1e-12)
    assert min(process.active_history) < n
