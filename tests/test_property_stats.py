"""Property-based tests for the rank/quantile helpers (hypothesis)."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.utils.stats import (
    empirical_quantile,
    quantile_of_value,
    rank_error,
    rank_of_value,
    target_rank,
    value_at_rank,
    within_eps,
)

value_lists = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=200,
)


@settings(max_examples=60, deadline=None)
@given(values=value_lists, phi=st.floats(min_value=0.0, max_value=1.0))
def test_empirical_quantile_is_an_element_with_correct_rank(values, phi):
    values = np.asarray(values, dtype=float)
    q = empirical_quantile(values, phi)
    assert q in values
    # the quantile's rank band always contains phi (zero rank error)
    assert rank_error(values, q, phi) == 0.0


@settings(max_examples=60, deadline=None)
@given(values=value_lists, phi=st.floats(min_value=0.0, max_value=1.0))
def test_target_rank_bounds(values, phi):
    n = len(values)
    rank = target_rank(n, phi)
    assert 1 <= rank <= n


@settings(max_examples=60, deadline=None)
@given(values=value_lists)
def test_value_at_rank_is_monotone_in_rank(values):
    arr = np.asarray(values, dtype=float)
    ranks = range(1, arr.size + 1)
    ordered = [value_at_rank(arr, r) for r in ranks]
    assert all(a <= b for a, b in zip(ordered, ordered[1:]))


@settings(max_examples=60, deadline=None)
@given(values=value_lists, probe=st.floats(min_value=-1e6, max_value=1e6))
def test_rank_and_quantile_of_value_are_consistent(values, probe):
    arr = np.asarray(values, dtype=float)
    rank = rank_of_value(arr, probe)
    assert 0 <= rank <= arr.size
    assert quantile_of_value(arr, probe) == rank / arr.size


@settings(max_examples=60, deadline=None)
@given(
    values=value_lists,
    phi=st.floats(min_value=0.0, max_value=1.0),
    eps=st.floats(min_value=0.0, max_value=0.5),
)
def test_rank_error_definition_matches_within_eps(values, phi, eps):
    arr = np.asarray(values, dtype=float)
    estimate = float(arr[0])
    error = rank_error(arr, estimate, phi)
    assert error >= 0.0
    assert within_eps(arr, estimate, phi, eps) == (error <= eps + 1e-12)


@settings(max_examples=60, deadline=None)
@given(values=value_lists, phi=st.floats(min_value=0.0, max_value=1.0))
def test_larger_eps_never_rejects_an_accepted_estimate(values, phi):
    arr = np.asarray(values, dtype=float)
    estimate = float(np.median(arr))
    for eps_small, eps_large in ((0.01, 0.1), (0.1, 0.3)):
        if within_eps(arr, estimate, phi, eps_small):
            assert within_eps(arr, estimate, phi, eps_large)
