"""Tests for the direct-sampling baseline."""

import pytest

from repro.baselines.direct_sampling import sampling_quantile, sampling_rounds
from repro.exceptions import ConfigurationError
from repro.utils.stats import rank_error


def test_sampling_rounds_formula():
    assert sampling_rounds(1024, 0.1) == 1000
    assert sampling_rounds(1024, 0.05) == 4000
    with pytest.raises(ConfigurationError):
        sampling_rounds(1, 0.1)
    with pytest.raises(ConfigurationError):
        sampling_rounds(100, 0.0)


def test_estimates_within_eps(medium_values):
    result = sampling_quantile(medium_values, phi=0.7, eps=0.1, rng=1, max_observers=64)
    assert rank_error(medium_values, result.estimate, 0.7) <= 0.1
    errors = [rank_error(medium_values, float(v), 0.7) for v in result.estimates]
    assert sum(e <= 0.1 for e in errors) / len(errors) > 0.9


def test_rounds_blow_up_quadratically_in_one_over_eps(medium_values):
    coarse = sampling_quantile(medium_values, phi=0.5, eps=0.2, rng=2, max_observers=8)
    fine = sampling_quantile(medium_values, phi=0.5, eps=0.05, rng=3, max_observers=8)
    assert fine.rounds == pytest.approx(coarse.rounds * 16, rel=0.01)


def test_observer_cap(medium_values):
    result = sampling_quantile(medium_values, phi=0.5, eps=0.2, rng=4, max_observers=16)
    assert result.observers == 16
    assert result.estimates.shape == (16,)
    # round/message accounting still covers all n nodes
    assert result.metrics.messages == result.rounds * medium_values.size


def test_explicit_round_override(small_values):
    result = sampling_quantile(small_values, phi=0.5, eps=0.2, rng=5, rounds=50)
    assert result.rounds == 50


def test_validation(small_values):
    with pytest.raises(ConfigurationError):
        sampling_quantile(small_values, phi=1.5, eps=0.1)
    with pytest.raises(ConfigurationError):
        sampling_quantile(small_values, phi=0.5, eps=0.0)
    with pytest.raises(ConfigurationError):
        sampling_quantile([1.0], phi=0.5, eps=0.1)
