"""Property-based tests for the engine substrate (hypothesis).

Invariants locked down here: partner draws are always valid and never
select the drawing node itself, failure masks hit the configured rate
within statistical tolerance, and the cumulative metrics of a run equal
the sum of its per-round records.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.aggregates.extrema import ExtremaProtocol
from repro.aggregates.push_sum import PushSumProtocol
from repro.gossip.engine import (
    draw_round_partners,
    run_protocol_loop,
    run_protocol_vectorized,
)
from repro.gossip.failures import UniformFailures
from repro.utils.rand import RandomSource

seeds = st.integers(min_value=0, max_value=10_000)


@settings(max_examples=40, deadline=None)
@given(n=st.integers(min_value=2, max_value=500), seed=seeds)
def test_partner_draws_are_valid_and_never_self(n, seed):
    source = RandomSource(seed)
    for _ in range(3):
        partners = draw_round_partners(source, n)
        assert partners.shape == (n,)
        assert partners.min() >= 0
        assert partners.max() < n
        assert not np.any(partners == np.arange(n))


@settings(max_examples=25, deadline=None)
@given(
    mu=st.floats(min_value=0.05, max_value=0.9),
    seed=seeds,
)
def test_failure_mask_respects_configured_rate(mu, seed):
    n, rounds = 400, 30
    model = UniformFailures(mu)
    source = RandomSource(seed)
    failed = sum(
        int(model.failure_mask(r, n, source).sum()) for r in range(rounds)
    )
    rate = failed / (n * rounds)
    # Bernoulli(mu) over n * rounds = 12000 draws: five sigma of tolerance.
    tolerance = 5.0 * np.sqrt(mu * (1 - mu) / (n * rounds))
    assert abs(rate - mu) <= tolerance


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(min_value=4, max_value=120),
    rounds=st.integers(min_value=1, max_value=25),
    mu=st.floats(min_value=0.0, max_value=0.6),
    seed=seeds,
)
def test_metric_totals_equal_sum_of_round_records(n, rounds, mu, seed):
    values = RandomSource(seed).random(n) * 10.0
    protocol = PushSumProtocol(values, rounds=rounds)
    result = run_protocol_vectorized(
        protocol, rng=seed, failure_model=mu if mu > 0 else None,
        max_rounds=rounds + 1,
    )
    stats = result.metrics
    history = stats.history
    assert stats.rounds == len(history)
    assert stats.messages == sum(r.messages for r in history)
    assert stats.total_bits == sum(r.bits for r in history)
    assert stats.failed_node_rounds == sum(r.failed_nodes for r in history)
    assert stats.max_message_bits == max(
        (r.max_message_bits for r in history), default=0
    )


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(min_value=4, max_value=100),
    mu=st.floats(min_value=0.0, max_value=0.5),
    seed=seeds,
)
def test_engines_agree_for_random_configurations(n, mu, seed):
    values = RandomSource(seed).random(n) * 100.0
    loop = run_protocol_loop(
        ExtremaProtocol(values, mode="max"), rng=seed,
        failure_model=mu if mu > 0 else None, raise_on_budget=False,
    )
    vec = run_protocol_vectorized(
        ExtremaProtocol(values, mode="max"), rng=seed,
        failure_model=mu if mu > 0 else None, raise_on_budget=False,
    )
    assert loop.outputs == vec.outputs
    assert loop.rounds == vec.rounds
    assert loop.metrics.summary() == vec.metrics.summary()


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=100),
    rounds=st.integers(min_value=1, max_value=30),
    mu=st.floats(min_value=0.0, max_value=0.8),
    seed=seeds,
)
def test_vectorized_push_sum_conserves_mass(n, rounds, mu, seed):
    values = RandomSource(seed).random(n) * 100.0
    protocol = PushSumProtocol(values, rounds=rounds)
    mass_before = protocol.total_mass
    weight_before = protocol.total_weight
    run_protocol_vectorized(
        protocol, rng=seed, failure_model=mu if mu > 0 else None,
        max_rounds=rounds + 1,
    )
    assert np.isclose(protocol.total_mass, mass_before, rtol=1e-9)
    assert np.isclose(protocol.total_weight, weight_before, rtol=1e-9)
